#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

#include "autograd/record.h"
#include "common/check.h"
#include "obs/profiler.h"
#include "runtime/parallel.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace autograd {

namespace top = ::urcl::ops;

namespace {

// Capture hook shared by every op function: one branch when no listener is
// installed (the steady-state tape path), a recorder callback when the
// compiled executor is capturing this forward build (autograd/record.h).
inline void Note(record::OpKind kind, const Variable& out,
                 std::initializer_list<const Variable*> parents,
                 const record::OpAttrs& attrs = {}) {
  if (record::TapeListener* rec = record::ActiveListener()) rec->OnOp(kind, out, parents, attrs);
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  URCL_PROFILE_OP();
  Tensor value = top::Add(a.value(), b.value());
  Variable out = Variable::MakeOp(std::move(value), "add", {a, b}, [a, b](const Tensor& g) {
    a.AccumulateGrad(top::ReduceTo(g, a.shape()));
    b.AccumulateGrad(top::ReduceTo(g, b.shape()));
  });
  Note(record::OpKind::kAdd, out, {&a, &b});
  return out;
}

Variable Sub(const Variable& a, const Variable& b) {
  URCL_PROFILE_OP();
  Tensor value = top::Sub(a.value(), b.value());
  Variable out = Variable::MakeOp(std::move(value), "sub", {a, b}, [a, b](const Tensor& g) {
    a.AccumulateGrad(top::ReduceTo(g, a.shape()));
    b.AccumulateGrad(top::ReduceTo(top::Neg(g), b.shape()));
  });
  Note(record::OpKind::kSub, out, {&a, &b});
  return out;
}

Variable Mul(const Variable& a, const Variable& b) {
  URCL_PROFILE_OP();
  Tensor value = top::Mul(a.value(), b.value());
  Variable out = Variable::MakeOp(std::move(value), "mul", {a, b}, [a, b](const Tensor& g) {
    a.AccumulateGrad(top::ReduceTo(top::Mul(g, b.value()), a.shape()));
    b.AccumulateGrad(top::ReduceTo(top::Mul(g, a.value()), b.shape()));
  });
  Note(record::OpKind::kMul, out, {&a, &b});
  return out;
}

Variable Div(const Variable& a, const Variable& b) {
  URCL_PROFILE_OP();
  Tensor value = top::Div(a.value(), b.value());
  Variable out = Variable::MakeOp(std::move(value), "div", {a, b}, [a, b](const Tensor& g) {
    a.AccumulateGrad(top::ReduceTo(top::Div(g, b.value()), a.shape()));
    const Tensor b2 = top::Square(b.value());
    const Tensor db = top::Neg(top::Div(top::Mul(g, a.value()), b2));
    b.AccumulateGrad(top::ReduceTo(db, b.shape()));
  });
  Note(record::OpKind::kDiv, out, {&a, &b});
  return out;
}

Variable AddScalar(const Variable& a, float s) {
  URCL_PROFILE_OP();
  Variable out = Variable::MakeOp(top::AddScalar(a.value(), s), "add_scalar", {a},
                                  [a](const Tensor& g) { a.AccumulateGrad(g); });
  record::OpAttrs attrs;
  attrs.scalar = s;
  Note(record::OpKind::kAddScalar, out, {&a}, attrs);
  return out;
}

Variable MulScalar(const Variable& a, float s) {
  URCL_PROFILE_OP();
  Variable out = Variable::MakeOp(top::MulScalar(a.value(), s), "mul_scalar", {a},
                                  [a, s](const Tensor& g) {
                                    a.AccumulateGrad(top::MulScalar(g, s));
                                  });
  record::OpAttrs attrs;
  attrs.scalar = s;
  Note(record::OpKind::kMulScalar, out, {&a}, attrs);
  return out;
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable Exp(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Exp(a.value());
  const Tensor saved = value;
  Variable out = Variable::MakeOp(std::move(value), "exp", {a}, [a, saved](const Tensor& g) {
    a.AccumulateGrad(top::Mul(g, saved));
  });
  Note(record::OpKind::kExp, out, {&a});
  return out;
}

Variable Log(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Log(a.value());
  Variable out = Variable::MakeOp(std::move(value), "log", {a}, [a](const Tensor& g) {
    a.AccumulateGrad(top::Div(g, a.value()));
  });
  Note(record::OpKind::kLog, out, {&a});
  return out;
}

Variable Sqrt(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Sqrt(a.value());
  const Tensor saved = value;
  Variable out = Variable::MakeOp(std::move(value), "sqrt", {a}, [a, saved](const Tensor& g) {
    a.AccumulateGrad(top::Div(g, top::MulScalar(saved, 2.0f)));
  });
  Note(record::OpKind::kSqrt, out, {&a});
  return out;
}

Variable Abs(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Abs(a.value());
  Variable out = Variable::MakeOp(std::move(value), "abs", {a}, [a](const Tensor& g) {
    a.AccumulateGrad(top::Mul(g, top::Sign(a.value())));
  });
  Note(record::OpKind::kAbs, out, {&a});
  return out;
}

Variable Tanh(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Tanh(a.value());
  const Tensor saved = value;
  Variable out = Variable::MakeOp(std::move(value), "tanh", {a}, [a, saved](const Tensor& g) {
    // d/dx tanh = 1 - tanh^2
    const Tensor one_minus = top::AddScalar(top::Neg(top::Square(saved)), 1.0f);
    a.AccumulateGrad(top::Mul(g, one_minus));
  });
  Note(record::OpKind::kTanh, out, {&a});
  return out;
}

Variable Sigmoid(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Sigmoid(a.value());
  const Tensor saved = value;
  Variable out = Variable::MakeOp(std::move(value), "sigmoid", {a},
                                  [a, saved](const Tensor& g) {
                                    // d/dx sigmoid = s * (1 - s)
                                    const Tensor ds =
                                        top::Mul(saved, top::AddScalar(top::Neg(saved), 1.0f));
                                    a.AccumulateGrad(top::Mul(g, ds));
                                  });
  Note(record::OpKind::kSigmoid, out, {&a});
  return out;
}

Variable Relu(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Relu(a.value());
  Variable out = Variable::MakeOp(std::move(value), "relu", {a}, [a](const Tensor& g) {
    const Tensor mask =
        top::Map(a.value(), [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
    a.AccumulateGrad(top::Mul(g, mask));
  });
  Note(record::OpKind::kRelu, out, {&a});
  return out;
}

Variable LeakyRelu(const Variable& a, float negative_slope) {
  URCL_PROFILE_OP();
  Tensor value = top::Map(a.value(), [negative_slope](float x) {
    return x > 0.0f ? x : negative_slope * x;
  });
  Variable out = Variable::MakeOp(
      std::move(value), "leaky_relu", {a}, [a, negative_slope](const Tensor& g) {
        const Tensor mask = top::Map(a.value(), [negative_slope](float x) {
          return x > 0.0f ? 1.0f : negative_slope;
        });
        a.AccumulateGrad(top::Mul(g, mask));
      });
  record::OpAttrs attrs;
  attrs.scalar = negative_slope;
  Note(record::OpKind::kLeakyRelu, out, {&a}, attrs);
  return out;
}

Variable Square(const Variable& a) {
  URCL_PROFILE_OP();
  Tensor value = top::Square(a.value());
  Variable out = Variable::MakeOp(std::move(value), "square", {a}, [a](const Tensor& g) {
    a.AccumulateGrad(top::Mul(g, top::MulScalar(a.value(), 2.0f)));
  });
  Note(record::OpKind::kSquare, out, {&a});
  return out;
}

Variable MatMul(const Variable& a, const Variable& b) {
  URCL_PROFILE_OP();
  Tensor value = top::MatMul(a.value(), b.value());
  Variable out = Variable::MakeOp(std::move(value), "matmul", {a, b}, [a, b](const Tensor& g) {
    const Tensor da = top::MatMul(g, top::TransposeLast2(b.value()));
    const Tensor db = top::MatMul(top::TransposeLast2(a.value()), g);
    a.AccumulateGrad(top::ReduceTo(da, a.shape()));
    b.AccumulateGrad(top::ReduceTo(db, b.shape()));
  });
  Note(record::OpKind::kMatMul, out, {&a, &b});
  return out;
}

namespace {

// Shape of a reduction result with keepdims=true, for re-broadcast in backward.
Shape KeepdimsShape(const Shape& in, const std::vector<int64_t>& axes) {
  std::vector<int64_t> dims = in.dims();
  if (axes.empty()) {
    for (auto& d : dims) d = 1;
  } else {
    for (const int64_t axis : axes) dims[static_cast<size_t>(in.CanonicalAxis(axis))] = 1;
  }
  return Shape(dims);
}

}  // namespace

Variable Sum(const Variable& a, const std::vector<int64_t>& axes, bool keepdims) {
  URCL_PROFILE_OP();
  Tensor value = top::Sum(a.value(), axes, keepdims);
  const Shape kept = KeepdimsShape(a.shape(), axes);
  Variable out = Variable::MakeOp(std::move(value), "sum", {a},
                                  [a, kept](const Tensor& g) {
                                    a.AccumulateGrad(top::BroadcastTo(g.Reshape(kept), a.shape()));
                                  });
  record::OpAttrs attrs;
  attrs.ints = axes;
  attrs.flag = keepdims;
  Note(record::OpKind::kSum, out, {&a}, attrs);
  return out;
}

Variable Mean(const Variable& a, const std::vector<int64_t>& axes, bool keepdims) {
  URCL_PROFILE_OP();
  Tensor value = top::Mean(a.value(), axes, keepdims);
  const Shape kept = KeepdimsShape(a.shape(), axes);
  const float scale =
      static_cast<float>(kept.NumElements()) / static_cast<float>(a.shape().NumElements());
  Variable out = Variable::MakeOp(std::move(value), "mean", {a},
                                  [a, kept, scale](const Tensor& g) {
                                    a.AccumulateGrad(top::MulScalar(
                                        top::BroadcastTo(g.Reshape(kept), a.shape()), scale));
                                  });
  record::OpAttrs attrs;
  attrs.ints = axes;
  attrs.flag = keepdims;
  Note(record::OpKind::kMean, out, {&a}, attrs);
  return out;
}

Variable Reshape(const Variable& a, const Shape& shape) {
  URCL_PROFILE_OP();
  Tensor value = a.value().Reshape(shape);
  const Shape original = a.shape();
  Variable out = Variable::MakeOp(std::move(value), "reshape", {a},
                                  [a, original](const Tensor& g) {
                                    a.AccumulateGrad(g.Reshape(original));
                                  });
  record::OpAttrs attrs;
  attrs.ints = shape.dims();
  Note(record::OpKind::kReshape, out, {&a}, attrs);
  return out;
}

Variable Transpose(const Variable& a, const std::vector<int64_t>& perm) {
  URCL_PROFILE_OP();
  Tensor value = top::Transpose(a.value(), perm);
  // Inverse permutation for backward.
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<size_t>(a.shape().CanonicalAxis(perm[i]))] = static_cast<int64_t>(i);
  }
  Variable out = Variable::MakeOp(std::move(value), "transpose", {a},
                                  [a, inverse](const Tensor& g) {
                                    a.AccumulateGrad(top::Transpose(g, inverse));
                                  });
  record::OpAttrs attrs;
  attrs.ints = perm;
  Note(record::OpKind::kTranspose, out, {&a}, attrs);
  return out;
}

Variable Slice(const Variable& a, const std::vector<int64_t>& starts,
               const std::vector<int64_t>& sizes) {
  URCL_PROFILE_OP();
  Tensor value = top::Slice(a.value(), starts, sizes);
  const Shape full = a.shape();
  Variable out = Variable::MakeOp(std::move(value), "slice", {a},
                                  [a, full, starts](const Tensor& g) {
                                    a.AccumulateGrad(top::UnSlice(g, full, starts));
                                  });
  record::OpAttrs attrs;
  attrs.ints = starts;
  attrs.ints2 = sizes;
  Note(record::OpKind::kSlice, out, {&a}, attrs);
  return out;
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  URCL_PROFILE_OP();
  URCL_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor value = top::Concat(values, axis);
  const int64_t canonical = parts[0].shape().CanonicalAxis(axis);
  Variable out = Variable::MakeOp(
      std::move(value), "concat", parts, [parts, canonical](const Tensor& g) {
        int64_t offset = 0;
        for (const Variable& p : parts) {
          std::vector<int64_t> starts(static_cast<size_t>(g.rank()), 0);
          starts[static_cast<size_t>(canonical)] = offset;
          p.AccumulateGrad(top::Slice(g, starts, p.shape().dims()));
          offset += p.shape().dim(canonical);
        }
      });
  if (record::TapeListener* rec = record::ActiveListener()) {
    record::OpAttrs attrs;
    attrs.axis = axis;
    rec->OnOpN(record::OpKind::kConcat, out, parts, attrs);
  }
  return out;
}

Variable Pad(const Variable& a, int64_t axis, int64_t before, int64_t after) {
  URCL_PROFILE_OP();
  Tensor value = top::Pad(a.value(), axis, before, after);
  const int64_t canonical = a.shape().CanonicalAxis(axis);
  Variable out = Variable::MakeOp(std::move(value), "pad", {a},
                                  [a, canonical, before](const Tensor& g) {
                                    std::vector<int64_t> starts(static_cast<size_t>(g.rank()), 0);
                                    starts[static_cast<size_t>(canonical)] = before;
                                    a.AccumulateGrad(top::Slice(g, starts, a.shape().dims()));
                                  });
  record::OpAttrs attrs;
  attrs.axis = axis;
  attrs.before = before;
  attrs.after = after;
  Note(record::OpKind::kPad, out, {&a}, attrs);
  return out;
}

Variable BroadcastTo(const Variable& a, const Shape& target) {
  URCL_PROFILE_OP();
  Tensor value = top::BroadcastTo(a.value(), target);
  Variable out = Variable::MakeOp(std::move(value), "broadcast_to", {a},
                                  [a](const Tensor& g) {
                                    a.AccumulateGrad(top::ReduceTo(g, a.shape()));
                                  });
  record::OpAttrs attrs;
  attrs.ints = target.dims();
  Note(record::OpKind::kBroadcastTo, out, {&a}, attrs);
  return out;
}

Variable Softmax(const Variable& a, int64_t axis) {
  URCL_PROFILE_OP();
  Tensor value = top::Softmax(a.value(), axis);
  const Tensor saved = value;
  const int64_t canonical = a.shape().CanonicalAxis(axis);
  Variable out = Variable::MakeOp(
      std::move(value), "softmax", {a}, [a, saved, canonical](const Tensor& g) {
        // dL/dx = (g - sum(g*y, axis)) * y
        const Tensor gy = top::Mul(g, saved);
        const Tensor total = top::Sum(gy, {canonical}, /*keepdims=*/true);
        a.AccumulateGrad(top::Mul(top::Sub(g, total), saved));
      });
  record::OpAttrs attrs;
  attrs.axis = axis;
  Note(record::OpKind::kSoftmax, out, {&a}, attrs);
  return out;
}

Variable StopGradient(const Variable& a) {
  // A fresh leaf with no parents: gradient flow ends here.
  Variable out(a.value(), /*requires_grad=*/false);
  if (record::TapeListener* rec = record::ActiveListener()) rec->OnAlias(out, a);
  return out;
}

Variable Dropout(const Variable& a, float p, Rng& rng, bool training) {
  URCL_PROFILE_OP();
  if (!training || p <= 0.0f) return a;
  URCL_CHECK_LT(p, 1.0f) << "dropout rate must be < 1";
  Tensor mask(a.shape());
  float* pm = mask.mutable_data();
  const float keep_scale = 1.0f / (1.0f - p);
  for (int64_t i = 0; i < mask.NumElements(); ++i) {
    pm[i] = rng.Bernoulli(p) ? 0.0f : keep_scale;
  }
  Tensor value = top::Mul(a.value(), mask);
  Variable out = Variable::MakeOp(std::move(value), "dropout", {a},
                                  [a, mask](const Tensor& g) {
                                    a.AccumulateGrad(top::Mul(g, mask));
                                  });
  // Per-step RNG draws make dropout unreplayable; the recorder aborts capture.
  Note(record::OpKind::kDropout, out, {&a});
  return out;
}

Variable TemporalConv2d(const Variable& input, const Variable& weight, int64_t dilation) {
  URCL_PROFILE_OP();
  // Shape/dilation validation lives in the shared kernel (ops::TemporalConv2d),
  // which the inference-only serving executor also calls directly.
  Tensor value = top::TemporalConv2d(input.value(), weight.value(), dilation);
  Variable out = Variable::MakeOp(
      std::move(value), "temporal_conv2d", {input, weight},
      [input, weight, dilation](const Tensor& g) {
        Tensor d_in(input.shape());
        Tensor d_w(weight.shape());
        ops::TemporalConv2dBackward(g, input.value(), weight.value(), dilation, &d_in, &d_w);
        input.AccumulateGrad(d_in);
        weight.AccumulateGrad(d_w);
      });
  record::OpAttrs attrs;
  attrs.axis = dilation;
  Note(record::OpKind::kTemporalConv2d, out, {&input, &weight}, attrs);
  return out;
}

}  // namespace autograd
}  // namespace urcl
