#include "autograd/record.h"

namespace urcl {
namespace autograd {
namespace record {

namespace {
thread_local TapeListener* t_listener = nullptr;
}  // namespace

TapeListener* ActiveListener() { return t_listener; }

void SetListener(TapeListener* listener) { t_listener = listener; }

}  // namespace record
}  // namespace autograd
}  // namespace urcl
