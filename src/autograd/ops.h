// Differentiable operations over Variables. Each op records a backward
// closure that accumulates gradients into its parents, handling NumPy-style
// broadcasting by reducing gradients back to the parent shapes.
#ifndef URCL_AUTOGRAD_OPS_H_
#define URCL_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"

namespace urcl {
namespace autograd {

// --- Arithmetic (broadcasting) ----------------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);
Variable Neg(const Variable& a);

// --- Elementwise nonlinearities ------------------------------------------------
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Abs(const Variable& a);  // subgradient 0 at 0
Variable Tanh(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float negative_slope = 0.01f);
Variable Square(const Variable& a);

// --- Linear algebra ----------------------------------------------------------------
// Batched matmul [..., M, K] x [..., K, N] with batch broadcasting.
Variable MatMul(const Variable& a, const Variable& b);

// --- Reductions ------------------------------------------------------------------------
Variable Sum(const Variable& a, const std::vector<int64_t>& axes = {}, bool keepdims = false);
Variable Mean(const Variable& a, const std::vector<int64_t>& axes = {}, bool keepdims = false);

// --- Shape ---------------------------------------------------------------------------------
Variable Reshape(const Variable& a, const Shape& shape);
Variable Transpose(const Variable& a, const std::vector<int64_t>& perm);
Variable Slice(const Variable& a, const std::vector<int64_t>& starts,
               const std::vector<int64_t>& sizes);
Variable Concat(const std::vector<Variable>& parts, int64_t axis);
Variable Pad(const Variable& a, int64_t axis, int64_t before, int64_t after);
Variable BroadcastTo(const Variable& a, const Shape& target);

// --- Softmax / regularization ---------------------------------------------------------------
Variable Softmax(const Variable& a, int64_t axis);

// Detaches `a` from the graph: forward value passes through, gradient stops
// (the SimSiam stop-gradient operator SG(.) of Eq. 13).
Variable StopGradient(const Variable& a);

// Inverted dropout; identity when !training or p == 0.
Variable Dropout(const Variable& a, float p, Rng& rng, bool training);

// --- Convolution -------------------------------------------------------------------------------
// 2-D convolution with kernel (1, K) and temporal dilation, as used by
// GraphWaveNet's gated TCN. Input [B, C_in, N, T], weight [C_out, C_in, 1, K];
// output [B, C_out, N, T - dilation*(K-1)] (no padding, stride 1).
Variable TemporalConv2d(const Variable& input, const Variable& weight, int64_t dilation);

// --- Operator sugar ----------------------------------------------------------------------------
inline Variable operator+(const Variable& a, const Variable& b) { return Add(a, b); }
inline Variable operator-(const Variable& a, const Variable& b) { return Sub(a, b); }
inline Variable operator*(const Variable& a, const Variable& b) { return Mul(a, b); }
inline Variable operator/(const Variable& a, const Variable& b) { return Div(a, b); }
inline Variable operator-(const Variable& a) { return Neg(a); }

}  // namespace autograd
}  // namespace urcl

#endif  // URCL_AUTOGRAD_OPS_H_
