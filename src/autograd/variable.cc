#include "autograd/variable.h"

#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/profiler.h"

namespace urcl {
namespace autograd {

namespace internal {

std::string DescribeStaleCapture(const Node& node, size_t parent_index) {
  const ParentEdge& edge = node.parents[parent_index];
  const Tensor& value = edge.node->value;
  std::ostringstream out;
  if (value.version_counter().get() != edge.counter.get()) {
    out << "op '" << node.op_name << "' parent " << parent_index << " (op '"
        << edge.node->op_name
        << "'): captured value storage was replaced (SetValue) after record";
    return out.str();
  }
  if (value.version() != edge.version) {
    out << "op '" << node.op_name << "' parent " << parent_index << " (op '"
        << edge.node->op_name << "'): captured value was mutated in place after record "
        << "(version " << edge.version << " at record, " << value.version() << " now)";
    return out.str();
  }
  return {};
}

void VerifyCapturedVersions(const Node& node) {
  for (size_t i = 0; i < node.parents.size(); ++i) {
    const std::string issue = DescribeStaleCapture(node, i);
    URCL_CHECK(issue.empty()) << "[urcl.check/version] " << issue;
  }
}

}  // namespace internal

Variable::Variable(Tensor value, bool requires_grad)
    : node_(std::make_shared<internal::Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Variable Variable::MakeOp(Tensor value, std::string op_name, std::vector<Variable> parents,
                          std::function<void(const Tensor&)> backward_fn) {
  bool needs_grad = false;
  for (const Variable& p : parents) {
    URCL_CHECK(p.IsValid()) << "op " << op_name << " received an empty Variable";
    needs_grad = needs_grad || p.requires_grad();
  }
  if (obs::ProfilerEnabled()) {
    // Close the innermost URCL_PROFILE_OP interval: the elapsed time covers
    // the op function body that computed `value`. Delegating ops (whose
    // MakeOp runs in the inner op) attribute to the inner op's name.
    const int64_t ns = obs::internal::PopForwardStart();
    if (ns >= 0) {
      obs::internal::RecordForward(
          op_name, ns, static_cast<uint64_t>(value.NumElements()) * sizeof(float));
    }
  }
  Variable out(std::move(value), needs_grad);
  out.node_->op_name = std::move(op_name);
  if (needs_grad) {
    out.node_->parents.reserve(parents.size());
    for (const Variable& p : parents) {
      // Stamp each captured operand with its current write-version so the
      // integrity checks can prove it was not mutated before Backward reads
      // it again. Recording is unconditional (two words per edge); only the
      // verification is gated.
      const Tensor& v = p.node_->value;
      out.node_->parents.push_back(
          internal::ParentEdge{p.node_, v.version_counter(), v.version()});
    }
    out.node_->backward_fn = std::move(backward_fn);
  }
  return out;
}

const Tensor& Variable::value() const {
  URCL_CHECK(IsValid());
  return node_->value;
}

bool Variable::requires_grad() const {
  URCL_CHECK(IsValid());
  return node_->requires_grad;
}

Tensor Variable::grad() const {
  URCL_CHECK(IsValid());
  if (!node_->has_grad) return Tensor::Zeros(node_->value.shape());
  return node_->grad;
}

void Variable::AccumulateGrad(const Tensor& delta) const {
  URCL_CHECK(IsValid());
  if (!node_->requires_grad) return;
  URCL_CHECK(delta.shape() == node_->value.shape())
      << "gradient shape " << delta.shape().ToString() << " does not match value shape "
      << node_->value.shape().ToString() << " at op " << node_->op_name;
  if (!node_->has_grad) {
    node_->grad = delta.Clone();
    node_->has_grad = true;
  } else {
    node_->grad.AddInPlace(delta);
  }
}

void Variable::ZeroGrad() const {
  URCL_CHECK(IsValid());
  node_->has_grad = false;
  node_->grad = Tensor();
}

void Variable::SetValue(const Tensor& value) const {
  URCL_CHECK(IsValid());
  URCL_CHECK(value.shape() == node_->value.shape())
      << "SetValue shape mismatch: " << value.shape().ToString() << " vs "
      << node_->value.shape().ToString();
  node_->value = value.Clone();
}

const std::string& Variable::op_name() const {
  URCL_CHECK(IsValid());
  return node_->op_name;
}

void Variable::Backward() {
  URCL_CHECK(IsValid());
  URCL_CHECK_EQ(node_->value.NumElements(), 1)
      << "Backward() without a seed requires a scalar output";
  BackwardWithSeed(Tensor::Full(node_->value.shape(), 1.0f));
}

void Variable::BackwardWithSeed(const Tensor& seed) {
  URCL_CHECK(IsValid());
  URCL_CHECK(requires_grad()) << "Backward on a node that does not require grad";

  // Iterative post-order DFS to get a topological order (parents before
  // children in `order`; we then walk it from the back).
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  struct Frame {
    internal::Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(node_.get()).second) stack.push_back({node_.get(), 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::Node* parent = frame.node->parents[frame.next_parent++].node.get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  if (check::GraphChecksEnabled()) {
    // Verify every captured operand is byte-for-byte what the forward pass
    // recorded before any backward closure re-reads it (URCL_CHECK env gate;
    // see autograd/lint.h for the full static pass).
    for (const internal::Node* node : order) VerifyCapturedVersions(*node);
  }

  AccumulateGrad(seed);
  const bool profiled = obs::ProfilerEnabled();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* node = *it;
    if (!node->backward_fn || !node->has_grad) continue;
    if (profiled) {
      const int64_t start_ticks = obs::internal::ProfileTicksNow();
      node->backward_fn(node->grad);
      obs::internal::RecordBackward(
          node->op_name,
          obs::internal::TicksToNs(obs::internal::ProfileTicksNow() - start_ticks),
          static_cast<uint64_t>(node->grad.NumElements()) * sizeof(float));
    } else {
      node->backward_fn(node->grad);
    }
  }
}

}  // namespace autograd
}  // namespace urcl
