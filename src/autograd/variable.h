// Tape-free reverse-mode automatic differentiation. A Variable is a cheap
// shared handle to a graph node holding a value, an accumulated gradient,
// parent edges, and a backward closure. Calling Backward() on a scalar root
// topologically sorts the reachable graph and propagates gradients.
#ifndef URCL_AUTOGRAD_VARIABLE_H_
#define URCL_AUTOGRAD_VARIABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace urcl {
namespace autograd {

class Variable;

namespace internal {

struct Node;

// Parent link plus the write-version stamp of the parent's value at op-record
// time. The backward closure will read the parent's value again at Backward()
// time; the integrity checks (lint.h, and Backward itself when
// check::GraphChecksEnabled()) compare these stamps against the live tensor
// to catch in-place mutation — or wholesale replacement via SetValue — of a
// captured operand. Holding the counter shared_ptr pins the captured storage
// generation so a recycled counter address can never alias a fresh one.
struct ParentEdge {
  std::shared_ptr<Node> node;
  std::shared_ptr<const std::atomic<uint64_t>> counter;
  uint64_t version = 0;
};

struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily on first accumulation
  bool has_grad = false;
  bool requires_grad = false;
  std::string op_name = "leaf";
  std::vector<ParentEdge> parents;
  // Receives the gradient w.r.t. this node's value; must accumulate into the
  // parents via Variable::AccumulateGrad (respecting requires_grad).
  std::function<void(const Tensor& upstream)> backward_fn;
};

// Empty string when parent `parent_index` of `node` is still exactly as
// captured; otherwise a human-readable description of how it went stale
// (in-place mutation vs storage replacement). Shared by Backward's gated
// verification and the LintGraph pass.
std::string DescribeStaleCapture(const Node& node, size_t parent_index);

// Aborts with a named [urcl.check/version] diagnostic on the first stale
// captured operand of `node`.
void VerifyCapturedVersions(const Node& node);

}  // namespace internal

// Value-semantics handle; copying shares the underlying node.
class Variable {
 public:
  // Empty handle (no node). Most APIs check validity.
  Variable() = default;

  // Leaf node wrapping `value`. Set requires_grad for trainable parameters.
  explicit Variable(Tensor value, bool requires_grad = false);

  // Interior node produced by an op.
  static Variable MakeOp(Tensor value, std::string op_name,
                         std::vector<Variable> parents,
                         std::function<void(const Tensor&)> backward_fn);

  bool IsValid() const { return node_ != nullptr; }

  const Tensor& value() const;
  const Shape& shape() const { return value().shape(); }
  bool requires_grad() const;

  // Gradient accumulated by the last Backward(); zero tensor if none reached.
  Tensor grad() const;

  // Adds `delta` into this node's gradient buffer (no-op if !requires_grad).
  // Const because a Variable is a handle: it mutates the shared node.
  void AccumulateGrad(const Tensor& delta) const;

  // Clears this node's gradient buffer.
  void ZeroGrad() const;

  // Replaces the wrapped value in place (for optimizer updates on leaves).
  void SetValue(const Tensor& value) const;

  // Runs reverse-mode accumulation from this node. If `seed` is omitted the
  // node must be scalar-shaped and is seeded with 1.
  void Backward();
  void BackwardWithSeed(const Tensor& seed);

  // Identity used to deduplicate nodes.
  const void* id() const { return node_.get(); }

  // Underlying graph node, for the analysis tooling (autograd/lint.h) and
  // white-box tests. Not part of the modeling API.
  const std::shared_ptr<internal::Node>& internal_node() const { return node_; }

  const std::string& op_name() const;

 private:
  std::shared_ptr<internal::Node> node_;
};

}  // namespace autograd
}  // namespace urcl

#endif  // URCL_AUTOGRAD_VARIABLE_H_
