// Tape-free reverse-mode automatic differentiation. A Variable is a cheap
// shared handle to a graph node holding a value, an accumulated gradient,
// parent edges, and a backward closure. Calling Backward() on a scalar root
// topologically sorts the reachable graph and propagates gradients.
#ifndef URCL_AUTOGRAD_VARIABLE_H_
#define URCL_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace urcl {
namespace autograd {

class Variable;

namespace internal {

struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily on first accumulation
  bool has_grad = false;
  bool requires_grad = false;
  std::string op_name = "leaf";
  std::vector<std::shared_ptr<Node>> parents;
  // Receives the gradient w.r.t. this node's value; must accumulate into the
  // parents via Variable::AccumulateGrad (respecting requires_grad).
  std::function<void(const Tensor& upstream)> backward_fn;
};

}  // namespace internal

// Value-semantics handle; copying shares the underlying node.
class Variable {
 public:
  // Empty handle (no node). Most APIs check validity.
  Variable() = default;

  // Leaf node wrapping `value`. Set requires_grad for trainable parameters.
  explicit Variable(Tensor value, bool requires_grad = false);

  // Interior node produced by an op.
  static Variable MakeOp(Tensor value, std::string op_name,
                         std::vector<Variable> parents,
                         std::function<void(const Tensor&)> backward_fn);

  bool IsValid() const { return node_ != nullptr; }

  const Tensor& value() const;
  const Shape& shape() const { return value().shape(); }
  bool requires_grad() const;

  // Gradient accumulated by the last Backward(); zero tensor if none reached.
  Tensor grad() const;

  // Adds `delta` into this node's gradient buffer (no-op if !requires_grad).
  // Const because a Variable is a handle: it mutates the shared node.
  void AccumulateGrad(const Tensor& delta) const;

  // Clears this node's gradient buffer.
  void ZeroGrad() const;

  // Replaces the wrapped value in place (for optimizer updates on leaves).
  void SetValue(const Tensor& value) const;

  // Runs reverse-mode accumulation from this node. If `seed` is omitted the
  // node must be scalar-shaped and is seeded with 1.
  void Backward();
  void BackwardWithSeed(const Tensor& seed);

  // Identity used to deduplicate nodes.
  const void* id() const { return node_.get(); }

  const std::string& op_name() const;

 private:
  std::shared_ptr<internal::Node> node_;
};

}  // namespace autograd
}  // namespace urcl

#endif  // URCL_AUTOGRAD_VARIABLE_H_
