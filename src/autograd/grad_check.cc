#include "autograd/grad_check.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace urcl {
namespace autograd {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable>& inputs, float epsilon, float tolerance) {
  // Analytic pass.
  Variable out = fn(inputs);
  URCL_CHECK_EQ(out.value().NumElements(), 1) << "grad check requires a scalar objective";
  for (Variable& input : inputs) input.ZeroGrad();
  out.Backward();

  GradCheckResult result;
  for (Variable& input : inputs) {
    if (!input.requires_grad()) continue;
    const Tensor analytic = input.grad();
    Tensor perturbed = input.value().Clone();
    for (int64_t i = 0; i < perturbed.NumElements(); ++i) {
      const float original = perturbed.FlatAt(i);

      perturbed.FlatSet(i, original + epsilon);
      input.SetValue(perturbed);
      const float up = fn(inputs).value().Item();

      perturbed.FlatSet(i, original - epsilon);
      input.SetValue(perturbed);
      const float down = fn(inputs).value().Item();

      perturbed.FlatSet(i, original);
      input.SetValue(perturbed);

      const float numeric = (up - down) / (2.0f * epsilon);
      const float diff = std::fabs(numeric - analytic.FlatAt(i));
      const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(analytic.FlatAt(i))});
      result.max_abs_error = std::max(result.max_abs_error, diff);
      result.max_rel_error = std::max(result.max_rel_error, diff / scale);
      if (diff / scale > tolerance) result.passed = false;
    }
  }
  return result;
}

}  // namespace autograd
}  // namespace urcl
