// Static integrity analysis over a recorded autograd graph (`urcl::check`,
// DESIGN.md §9). LintGraph walks every node reachable from a root and checks
// the structural invariants the tape-free recorder is supposed to maintain —
// the class of bug that otherwise only surfaces as a wrong gradient:
//
//   version        a captured operand was mutated in place (or replaced via
//                  SetValue) after op-record time, so the backward closure
//                  would differentiate through values the forward pass never
//                  produced;
//   arity          a node's parent count does not match its op (e.g. a
//                  binary 'mul' recorded with one parent);
//   shape          a node's value shape disagrees with what its op computes
//                  from the parent shapes, so AccumulateGrad would be fed a
//                  mismatched gradient during backward;
//   grad-shape     an already-accumulated gradient does not match its node's
//                  value shape;
//   requires-grad  closure/requires_grad inconsistencies, including a
//                  backward closure on a subgraph with no trainable leaves;
//   cycle          the "DAG" has a cycle, which backward's topological order
//                  silently mis-handles.
//
// Usable directly in tests, and wired into the trainer behind the URCL_CHECK
// environment gate (zero cost when disabled). CheckGraph aborts with the full
// issue list; every diagnostic is prefixed "[urcl.check/<rule>]".
#ifndef URCL_AUTOGRAD_LINT_H_
#define URCL_AUTOGRAD_LINT_H_

#include <string>
#include <vector>

#include "autograd/variable.h"

namespace urcl {
namespace autograd {

// Closed-form output-shape rules, shared with the compiled executor's
// ahead-of-time shape inference (src/exec/): the same predicates the linter
// uses to re-derive a node's expected shape from its parents.
//
// Ops whose output shape must equal their (single) parent's shape.
bool IsShapePreserving(const std::string& op);
// The four broadcasting binary elementwise ops (add/sub/mul/div).
bool IsBroadcastBinary(const std::string& op);
// Non-fatal broadcast-shape computation: false when incompatible.
bool TryBroadcast(const Shape& a, const Shape& b, Shape* out);

// One linter finding. `rule` is the stable machine-readable name listed
// above; `op` is the op_name of the offending node.
struct LintIssue {
  std::string rule;
  std::string op;
  std::string detail;
};

// Runs every check over the graph reachable from `root` (following recorded
// parent edges) and returns all findings. Read-only and non-fatal; an empty
// result means the graph is clean.
std::vector<LintIssue> LintGraph(const Variable& root);

// One "[urcl.check/<rule>] op '<op>': <detail>" line per issue.
std::string FormatLintIssues(const std::vector<LintIssue>& issues);

// Aborts with the formatted issue list when LintGraph finds anything.
void CheckGraph(const Variable& root);

}  // namespace autograd
}  // namespace urcl

#endif  // URCL_AUTOGRAD_LINT_H_
