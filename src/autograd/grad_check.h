// Finite-difference gradient verification for differentiable ops; used by the
// test suite to validate every backward implementation.
#ifndef URCL_AUTOGRAD_GRAD_CHECK_H_
#define URCL_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace urcl {
namespace autograd {

struct GradCheckResult {
  bool passed = true;
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
};

// Verifies analytic gradients of `fn` (which must return a scalar Variable
// computed from `inputs`) against central finite differences. `fn` is called
// repeatedly; it must be a pure function of the input values.
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable>& inputs, float epsilon = 1e-3f, float tolerance = 2e-2f);

}  // namespace autograd
}  // namespace urcl

#endif  // URCL_AUTOGRAD_GRAD_CHECK_H_
