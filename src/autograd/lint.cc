#include "autograd/lint.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "tensor/shape.h"

namespace urcl {
namespace autograd {
namespace {

using internal::Node;
using internal::ParentEdge;

// Parent-count invariant per op name; max -1 means unbounded. Ops recorded
// without grad (no closure) drop their parents by design and are exempt.
struct ArityRule {
  int min;
  int max;
};

const std::unordered_map<std::string, ArityRule>& ArityRules() {
  static const auto* rules = new std::unordered_map<std::string, ArityRule>{
      {"add", {2, 2}},        {"sub", {2, 2}},
      {"mul", {2, 2}},        {"div", {2, 2}},
      {"matmul", {2, 2}},     {"temporal_conv2d", {2, 2}},
      {"add_scalar", {1, 1}}, {"mul_scalar", {1, 1}},
      {"exp", {1, 1}},        {"log", {1, 1}},
      {"sqrt", {1, 1}},       {"abs", {1, 1}},
      {"tanh", {1, 1}},       {"sigmoid", {1, 1}},
      {"relu", {1, 1}},       {"leaky_relu", {1, 1}},
      {"square", {1, 1}},     {"sum", {1, 1}},
      {"mean", {1, 1}},       {"reshape", {1, 1}},
      {"transpose", {1, 1}},  {"slice", {1, 1}},
      {"pad", {1, 1}},        {"broadcast_to", {1, 1}},
      {"softmax", {1, 1}},    {"dropout", {1, 1}},
      {"concat", {1, -1}},    {"leaf", {0, 0}},
  };
  return *rules;
}

}  // namespace

// Ops whose output shape must equal their (single) parent's shape.
bool IsShapePreserving(const std::string& op) {
  static const auto* set = new std::unordered_set<std::string>{
      "add_scalar", "mul_scalar", "exp",  "log",        "sqrt",    "abs",
      "tanh",       "sigmoid",    "relu", "leaky_relu", "square",  "softmax",
      "dropout"};
  return set->count(op) > 0;
}

bool IsBroadcastBinary(const std::string& op) {
  return op == "add" || op == "sub" || op == "mul" || op == "div";
}

// Non-fatal variant of BroadcastShapes: false when incompatible.
bool TryBroadcast(const Shape& a, const Shape& b, Shape* out) {
  const int64_t rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> dims(static_cast<size_t>(rank), 1);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t da = i < a.rank() ? a.dim(a.rank() - 1 - i) : 1;
    const int64_t db = i < b.rank() ? b.dim(b.rank() - 1 - i) : 1;
    if (da != db && da != 1 && db != 1) return false;
    dims[static_cast<size_t>(rank - 1 - i)] = da == 1 ? db : da;
  }
  *out = Shape(std::move(dims));
  return true;
}

namespace {

void AddIssue(std::vector<LintIssue>* issues, const Node* node, std::string rule,
              std::string detail) {
  issues->push_back(LintIssue{std::move(rule), node->op_name, std::move(detail)});
}

// Output-shape agreement with the parent shapes for the ops where the rule is
// closed-form. A mismatch means some AccumulateGrad call during backward is
// guaranteed to receive a gradient whose shape disagrees with its value.
void CheckShapes(const Node* node, std::vector<LintIssue>* issues) {
  const Shape& out = node->value.shape();
  const auto parent_shape = [node](size_t i) -> const Shape& {
    return node->parents[i].node->value.shape();
  };
  if (IsBroadcastBinary(node->op_name) && node->parents.size() == 2) {
    Shape expected;
    if (!TryBroadcast(parent_shape(0), parent_shape(1), &expected)) {
      AddIssue(issues, node, "shape",
               "parent shapes " + parent_shape(0).ToString() + " and " +
                   parent_shape(1).ToString() + " do not broadcast together");
    } else if (expected != out) {
      AddIssue(issues, node, "shape",
               "value shape " + out.ToString() + " does not match broadcast of parents (" +
                   expected.ToString() + ")");
    }
  } else if (IsShapePreserving(node->op_name) && node->parents.size() == 1) {
    if (parent_shape(0) != out) {
      AddIssue(issues, node, "shape",
               "value shape " + out.ToString() + " does not match parent shape " +
                   parent_shape(0).ToString() + " for a shape-preserving op");
    }
  } else if (node->op_name == "reshape" && node->parents.size() == 1) {
    if (parent_shape(0).NumElements() != out.NumElements()) {
      AddIssue(issues, node, "shape",
               "reshape element count " + out.ToString() + " differs from parent " +
                   parent_shape(0).ToString());
    }
  } else if (node->op_name == "broadcast_to" && node->parents.size() == 1) {
    if (!IsBroadcastableTo(parent_shape(0), out)) {
      AddIssue(issues, node, "shape",
               "parent shape " + parent_shape(0).ToString() + " is not broadcastable to " +
                   out.ToString());
    }
  } else if (node->op_name == "matmul" && node->parents.size() == 2) {
    const Shape& a = parent_shape(0);
    const Shape& b = parent_shape(1);
    if (a.rank() < 2 || b.rank() < 2 || out.rank() < 2) {
      AddIssue(issues, node, "shape", "matmul operands/output must have rank >= 2");
    } else if (a.dim(-1) != b.dim(-2) || out.dim(-2) != a.dim(-2) ||
               out.dim(-1) != b.dim(-1)) {
      AddIssue(issues, node, "shape",
               "matmul shapes disagree: " + a.ToString() + " x " + b.ToString() + " -> " +
                   out.ToString());
    }
  } else if (node->op_name == "concat") {
    for (const ParentEdge& edge : node->parents) {
      if (edge.node->value.shape().rank() != out.rank()) {
        AddIssue(issues, node, "shape",
                 "concat parent rank " + edge.node->value.shape().ToString() +
                     " differs from output " + out.ToString());
        break;
      }
    }
  }
}

void CheckNode(const Node* node, bool reaches_trainable_leaf,
               std::vector<LintIssue>* issues) {
  // Stale captures (same predicate Backward verifies under the env gate).
  for (size_t i = 0; i < node->parents.size(); ++i) {
    const std::string stale = internal::DescribeStaleCapture(*node, i);
    if (!stale.empty()) AddIssue(issues, node, "version", stale);
  }

  // Closure / requires_grad consistency.
  if (node->backward_fn && !node->requires_grad) {
    AddIssue(issues, node, "requires-grad",
             "node has a backward closure but requires_grad is false");
  }
  if (node->backward_fn && node->parents.empty()) {
    AddIssue(issues, node, "requires-grad", "leaf node has a backward closure");
  }
  if (!node->backward_fn && !node->parents.empty()) {
    AddIssue(issues, node, "requires-grad", "node records parents but has no backward closure");
  }
  if (node->requires_grad && !reaches_trainable_leaf) {
    AddIssue(issues, node, "requires-grad",
             "backward closure on a subgraph with no trainable leaves");
  }

  // An accumulated gradient must always match its value's shape.
  if (node->has_grad && node->grad.shape() != node->value.shape()) {
    AddIssue(issues, node, "grad-shape",
             "accumulated gradient shape " + node->grad.shape().ToString() +
                 " does not match value shape " + node->value.shape().ToString());
  }

  // Arity + shape rules only apply to nodes that will run a closure: ops
  // recorded without grad legitimately drop their parents.
  if (!node->backward_fn) return;
  const auto rule = ArityRules().find(node->op_name);
  if (rule != ArityRules().end()) {
    const int count = static_cast<int>(node->parents.size());
    if (count < rule->second.min || (rule->second.max >= 0 && count > rule->second.max)) {
      std::ostringstream detail;
      detail << "op expects ";
      if (rule->second.max < 0) {
        detail << ">= " << rule->second.min;
      } else if (rule->second.min == rule->second.max) {
        detail << rule->second.min;
      } else {
        detail << rule->second.min << ".." << rule->second.max;
      }
      detail << " parents, node has " << count;
      AddIssue(issues, node, "arity", detail.str());
    }
  }
  CheckShapes(node, issues);
}

}  // namespace

std::vector<LintIssue> LintGraph(const Variable& root) {
  URCL_CHECK(root.IsValid()) << "[urcl.check/lint] LintGraph on an empty Variable";
  std::vector<LintIssue> issues;

  // Iterative DFS with gray/black coloring: collects a parents-first order
  // and reports back edges (cycles) instead of looping on them.
  enum class Color { kGray, kBlack };
  std::unordered_map<Node*, Color> color;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  std::vector<Node*> order;
  Node* start = root.internal_node().get();
  stack.push_back({start, 0});
  color.emplace(start, Color::kGray);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent++].node.get();
      const auto it = color.find(parent);
      if (it == color.end()) {
        color.emplace(parent, Color::kGray);
        stack.push_back({parent, 0});
      } else if (it->second == Color::kGray) {
        issues.push_back(LintIssue{
            "cycle", frame.node->op_name,
            "graph contains a cycle through op '" + parent->op_name +
                "' — backward's topological order would visit a node before its parents"});
      }
    } else {
      color[frame.node] = Color::kBlack;
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Bottom-up trainable-leaf reachability over the parents-first order, then
  // the per-node checks.
  std::unordered_map<Node*, bool> reaches;
  for (Node* node : order) {
    bool node_reaches = node->parents.empty() && node->requires_grad;
    for (const ParentEdge& edge : node->parents) {
      const auto it = reaches.find(edge.node.get());
      node_reaches = node_reaches || (it != reaches.end() && it->second);
    }
    reaches[node] = node_reaches;
    CheckNode(node, node_reaches, &issues);
  }
  return issues;
}

std::string FormatLintIssues(const std::vector<LintIssue>& issues) {
  std::ostringstream out;
  for (const LintIssue& issue : issues) {
    out << "[urcl.check/" << issue.rule << "] op '" << issue.op << "': " << issue.detail
        << "\n";
  }
  return out.str();
}

void CheckGraph(const Variable& root) {
  const std::vector<LintIssue> issues = LintGraph(root);
  URCL_CHECK(issues.empty()) << "autograd graph lint failed ("
                             << issues.size() << " issue(s)):\n"
                             << FormatLintIssues(issues);
}

}  // namespace autograd
}  // namespace urcl
