// Tape capture hooks for the compiled executor (src/exec/). Every autograd op
// function notifies the thread-local TapeListener (when one is installed) with
// its output Variable, its parent Variables and the closed-form attributes
// needed to re-execute the op without the tape. The listener lives here — not
// in src/exec/ — so autograd never depends on the executor; exec's
// GraphRecorder implements the interface.
//
// The hook fires for every op, including ops recorded without gradients
// (whose tape nodes drop their parents), which is exactly why a post-hoc walk
// of the node graph cannot recover the program: capture must observe the op
// stream as it happens. StopGradient bypasses Variable::MakeOp entirely (it
// returns a fresh leaf aliasing the input's storage) and gets the dedicated
// OnAlias hook.
#ifndef URCL_AUTOGRAD_RECORD_H_
#define URCL_AUTOGRAD_RECORD_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "autograd/variable.h"

namespace urcl {
namespace autograd {
namespace record {

// One enumerator per op function in autograd/ops.h (Neg delegates to
// MulScalar and records as kMulScalar). kDropout is recorded so a capture
// that encounters it can abort deterministically: its mask is drawn from the
// trainer RNG per step, so a replayed plan could never reproduce it.
enum class OpKind : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kAddScalar,
  kMulScalar,
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kTanh,
  kSigmoid,
  kRelu,
  kLeakyRelu,
  kSquare,
  kMatMul,
  kSum,
  kMean,
  kReshape,
  kTranspose,
  kSlice,
  kConcat,
  kPad,
  kBroadcastTo,
  kSoftmax,
  kTemporalConv2d,
  kDropout,
};

// Closed-form op parameters, enough to re-execute the forward kernel and to
// derive the backward program at compile time. Fields are op-specific:
//   scalar : AddScalar/MulScalar operand, LeakyRelu negative slope
//   flag   : Sum/Mean keepdims
//   axis   : Concat/Pad/Softmax axis (as passed, not canonicalized);
//            TemporalConv2d dilation
//   before/after : Pad amounts
//   ints   : Sum/Mean axes, Reshape/BroadcastTo target dims, Transpose perm,
//            Slice starts
//   ints2  : Slice sizes
struct OpAttrs {
  float scalar = 0.0f;
  bool flag = false;
  int64_t axis = 0;
  int64_t before = 0;
  int64_t after = 0;
  std::vector<int64_t> ints;
  std::vector<int64_t> ints2;
};

class TapeListener {
 public:
  virtual ~TapeListener() = default;

  // One recorded op: `out` was produced from `parents` with `attrs`. Called
  // after Variable::MakeOp, on the thread running the forward build.
  virtual void OnOp(OpKind kind, const Variable& out,
                    std::initializer_list<const Variable*> parents, const OpAttrs& attrs) = 0;

  // Concat's parent list is dynamically sized.
  virtual void OnOpN(OpKind kind, const Variable& out, const std::vector<Variable>& parents,
                     const OpAttrs& attrs) = 0;

  // StopGradient: `out` is a fresh non-grad leaf sharing `in`'s value storage.
  virtual void OnAlias(const Variable& out, const Variable& in) = 0;
};

// Thread-local listener; nullptr (the default) makes every hook a single
// predictable branch on the tape hot path.
TapeListener* ActiveListener();
void SetListener(TapeListener* listener);

// RAII installer used by the capture pass.
class ListenerScope {
 public:
  explicit ListenerScope(TapeListener* listener) : previous_(ActiveListener()) {
    SetListener(listener);
  }
  ~ListenerScope() { SetListener(previous_); }
  ListenerScope(const ListenerScope&) = delete;
  ListenerScope& operator=(const ListenerScope&) = delete;

 private:
  TapeListener* previous_;
};

}  // namespace record
}  // namespace autograd
}  // namespace urcl

#endif  // URCL_AUTOGRAD_RECORD_H_
