// Arena storage for compiled-plan replay (DESIGN.md §12). A CompiledPlan's
// steady-state step must perform zero BufferPool acquisitions: every tensor
// the plan's kernels produce lives at a precomputed offset inside one flat
// arena block, reused across steps.
//
// The arena is a pool::StorageHook, so it slots under the Tensor storage
// funnel without touching any kernel: while a plan Run has the hook
// installed, every `Tensor(shape)` / `Tensor::Uninitialized` the kernels
// make is served from the arena instead of the pool.
//
// Lifecycle per plan:
//   1. Measure: one full execution of the plan with the arena in measure
//      mode. Each acquisition is recorded as an ArenaEvent (element count,
//      zero-fill flag, allocation tick); the release of its storage records
//      the free tick. Storage still alive when the measure run ends (e.g.
//      parameter gradients read by the optimizer afterwards) gets an
//      infinite lifetime — a dedicated, never-reused slot.
//   2. Plan: first-fit interval packing assigns each event a 64-byte-aligned
//      offset such that no two events with overlapping lifetimes overlap in
//      memory. ValidateLayout re-checks this invariant (it is the arena's
//      whole correctness argument) and rejects any overlap.
//   3. Replay: the arena holds one base buffer (a single pool acquisition)
//      plus one pre-built shared_ptr owner per event; each Run hands out
//      aliasing shared_ptrs in the recorded event order, allocation-free.
//      Any divergence from the recorded sequence (count or zero-fill
//      mismatch, too many events) aborts — a replayed plan that allocates
//      differently than its measure run is a compiler bug, not a condition
//      to tolerate.
//
// Poison audit: when pool poisoning is enabled, non-zero-filled replay
// handouts are filled with pool::kPoisonWord exactly like pool buffers, so
// the PR-5 "every element written before first read" audits apply to arena
// slots unchanged.
#ifndef URCL_EXEC_ARENA_H_
#define URCL_EXEC_ARENA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/pool.h"

namespace urcl {
namespace exec {

// One recorded storage acquisition inside a plan execution.
struct ArenaEvent {
  int64_t count = 0;        // floats requested
  bool zero_fill = false;   // zeroed on acquire vs fully-written-by-kernel
  int64_t alloc_tick = 0;   // position in the global alloc/free tick order
  int64_t free_tick = -1;   // -1 until freed; kInfiniteTick if never freed
  int64_t offset = 0;       // assigned arena offset (floats, 16-aligned)
  int64_t size = 0;         // rounded slot size (floats, multiple of 16)
};

inline constexpr int64_t kInfiniteTick = INT64_MAX;

// True when the layout is sound: no two events whose lifetimes
// [alloc_tick, free_tick) overlap occupy overlapping [offset, offset+size)
// ranges, and every event fits in `total_floats`. On failure, `error`
// (when non-null) names the offending event pair. Exposed standalone so
// tests can seed a deliberately overlapping assignment and assert rejection.
bool ValidateLayout(const std::vector<ArenaEvent>& events, int64_t total_floats,
                    std::string* error);

class PlanArena : public pool::StorageHook {
 public:
  PlanArena() = default;
  PlanArena(const PlanArena&) = delete;
  PlanArena& operator=(const PlanArena&) = delete;

  // --- Measure mode --------------------------------------------------------
  // Between BeginMeasure and FinishMeasure the hook records every
  // acquisition; FinishMeasure closes still-open lifetimes as infinite,
  // packs the layout, validates it, and allocates the base buffer.
  // Returns false (leaving the arena unusable) if validation fails.
  void BeginMeasure();
  bool FinishMeasure();

  // --- Replay mode ---------------------------------------------------------
  // Resets the event cursor for one plan execution. Every subsequent
  // Acquire must match the recorded sequence.
  void BeginReplay();
  // Asserts the execution consumed exactly the recorded events.
  void EndReplay();
  // Abandons a replay mid-run (e.g. the trainer quarantined the step between
  // forward and backward) without the full-consumption assertion.
  void AbortReplay();

  // pool::StorageHook: measure-mode recording or replay-mode handout,
  // depending on the current phase.
  pool::BufferPool::Acquisition Acquire(int64_t count, bool zero_fill) override;

  bool ready() const { return base_.data != nullptr; }
  int64_t total_floats() const { return total_floats_; }
  const std::vector<ArenaEvent>& events() const { return events_; }

 private:
  friend struct MeasureOwner;

  enum class Phase { kIdle, kMeasure, kReplay };

  // Replay handout owner: carries the per-event write-version counter and
  // keeps the arena's base storage alive. Pre-built once per event so replay
  // handouts are pure aliasing-constructor shared_ptr copies.
  struct ReplayOwner {
    std::atomic<uint64_t> version{0};
    std::shared_ptr<float> base;  // pins the arena block
  };

  void RecordFree(size_t event_index);

  Phase phase_ = Phase::kIdle;
  std::vector<ArenaEvent> events_;
  int64_t tick_ = 0;
  size_t cursor_ = 0;  // next event during replay
  int64_t total_floats_ = 0;
  pool::BufferPool::Acquisition base_;
  std::vector<std::shared_ptr<ReplayOwner>> owners_;
};

}  // namespace exec
}  // namespace urcl

#endif  // URCL_EXEC_ARENA_H_
