#include "exec/arena.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace urcl {
namespace exec {

namespace {

// Slot granularity: 16 floats = 64 bytes, the pool's alignment (cache line).
constexpr int64_t kAlignFloats = 16;

int64_t RoundUp(int64_t count) {
  const int64_t n = std::max<int64_t>(count, 1);
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

bool Overlaps(int64_t a_begin, int64_t a_end, int64_t b_begin, int64_t b_end) {
  return a_begin < b_end && b_begin < a_end;
}

}  // namespace

bool ValidateLayout(const std::vector<ArenaEvent>& events, int64_t total_floats,
                    std::string* error) {
  for (size_t i = 0; i < events.size(); ++i) {
    const ArenaEvent& e = events[i];
    if (e.size < e.count || e.offset < 0 || e.offset + e.size > total_floats) {
      if (error != nullptr) {
        *error = "event " + std::to_string(i) + " does not fit the arena";
      }
      return false;
    }
    for (size_t j = i + 1; j < events.size(); ++j) {
      const ArenaEvent& f = events[j];
      const bool lifetimes_overlap =
          Overlaps(e.alloc_tick, e.free_tick, f.alloc_tick, f.free_tick);
      const bool memory_overlaps =
          Overlaps(e.offset, e.offset + e.size, f.offset, f.offset + f.size);
      if (lifetimes_overlap && memory_overlaps) {
        if (error != nullptr) {
          *error = "events " + std::to_string(i) + " and " + std::to_string(j) +
                   " are live simultaneously but share arena bytes";
        }
        return false;
      }
    }
  }
  return true;
}

// Measure-mode handout owner: keeps the real (pool) storage alive and
// reports the storage's death back to the arena as this event's free tick.
struct MeasureOwner {
  PlanArena* arena;
  size_t event_index;
  pool::BufferPool::Acquisition inner;

  ~MeasureOwner() { arena->RecordFree(event_index); }
};

void PlanArena::BeginMeasure() {
  URCL_CHECK(phase_ == Phase::kIdle) << "arena measure started twice";
  events_.clear();
  owners_.clear();
  base_ = {};
  tick_ = 0;
  total_floats_ = 0;
  phase_ = Phase::kMeasure;
}

bool PlanArena::FinishMeasure() {
  URCL_CHECK(phase_ == Phase::kMeasure);
  phase_ = Phase::kIdle;
  // Close still-open lifetimes: storage that escapes the measure run (e.g.
  // parameter gradients the optimizer reads after the step) can never share
  // bytes with anything, so it gets a dedicated slot.
  for (ArenaEvent& e : events_) {
    if (e.free_tick < 0) e.free_tick = kInfiniteTick;
    e.size = RoundUp(e.count);
  }
  // First-fit interval packing in allocation order: place each event at the
  // lowest aligned offset not occupied by an already-placed event with an
  // overlapping lifetime.
  std::vector<size_t> order(events_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return events_[a].alloc_tick < events_[b].alloc_tick;
  });
  int64_t high_water = 0;
  std::vector<size_t> placed;
  placed.reserve(order.size());
  for (const size_t i : order) {
    ArenaEvent& e = events_[i];
    int64_t offset = 0;
    for (bool moved = true; moved;) {
      moved = false;
      for (const size_t j : placed) {
        const ArenaEvent& f = events_[j];
        if (Overlaps(e.alloc_tick, e.free_tick, f.alloc_tick, f.free_tick) &&
            Overlaps(offset, offset + e.size, f.offset, f.offset + f.size)) {
          offset = f.offset + f.size;  // skip past the conflict, rescan
          moved = true;
        }
      }
    }
    e.offset = offset;
    high_water = std::max(high_water, offset + e.size);
    placed.push_back(i);
  }
  total_floats_ = high_water;
  std::string error;
  if (!ValidateLayout(events_, total_floats_, &error)) {
    URCL_CHECK(false) << "arena layout invalid after packing: " << error;
    return false;
  }
  // The arena's one real allocation. This is the sanctioned pool call in
  // src/exec/ — everything downstream is served from this block.
  base_ = pool::BufferPool::Get().AcquireWithVersion(  // lint:allow(exec-pool-acquire)
      std::max<int64_t>(total_floats_, 1), /*zero_fill=*/true);
  owners_.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    auto owner = std::make_shared<ReplayOwner>();
    owner->base = base_.data;
    owners_.push_back(std::move(owner));
  }
  return true;
}

void PlanArena::BeginReplay() {
  URCL_CHECK(ready()) << "arena replayed before FinishMeasure";
  URCL_CHECK(phase_ == Phase::kIdle);
  phase_ = Phase::kReplay;
  cursor_ = 0;
}

void PlanArena::EndReplay() {
  URCL_CHECK(phase_ == Phase::kReplay);
  URCL_CHECK_EQ(cursor_, events_.size())
      << "plan execution performed fewer storage acquisitions than its measure run";
  phase_ = Phase::kIdle;
}

void PlanArena::AbortReplay() {
  URCL_CHECK(phase_ == Phase::kReplay);
  phase_ = Phase::kIdle;
  cursor_ = 0;
}

pool::BufferPool::Acquisition PlanArena::Acquire(int64_t count, bool zero_fill) {
  if (phase_ == Phase::kMeasure) {
    const size_t index = events_.size();
    ArenaEvent e;
    e.count = count;
    e.zero_fill = zero_fill;
    e.alloc_tick = tick_++;
    events_.push_back(e);
    // Real storage still comes from the pool during the measure run; the
    // MeasureOwner wrapper reports its death for lifetime analysis.
    auto owner = std::make_shared<MeasureOwner>();
    owner->arena = this;
    owner->event_index = index;
    // lint:allow(exec-pool-acquire)
    owner->inner = pool::BufferPool::Get().AcquireWithVersion(count, zero_fill);
    pool::BufferPool::Acquisition out;
    out.data = std::shared_ptr<float>(owner, owner->inner.data.get());
    out.version =
        std::shared_ptr<std::atomic<uint64_t>>(owner, owner->inner.version.get());
    return out;
  }
  URCL_CHECK(phase_ == Phase::kReplay) << "arena acquisition outside measure/replay";
  URCL_CHECK_LT(cursor_, events_.size())
      << "plan execution performed more storage acquisitions than its measure run";
  const ArenaEvent& e = events_[cursor_];
  URCL_CHECK_EQ(count, e.count) << "replayed acquisition size diverged from the measure run";
  URCL_CHECK(zero_fill == e.zero_fill) << "replayed acquisition mode diverged";
  const std::shared_ptr<ReplayOwner>& owner = owners_[cursor_];
  ++cursor_;
  float* slot = base_.data.get() + e.offset;
  if (zero_fill) {
    std::memset(slot, 0, static_cast<size_t>(count) * sizeof(float));
  } else if (pool::BufferPool::Get().poison_enabled()) {
    // Mirror the pool's read-before-write tripwire on reused arena bytes.
    uint32_t* words = reinterpret_cast<uint32_t*>(slot);
    for (int64_t i = 0; i < count; ++i) words[i] = pool::kPoisonWord;
  }
  pool::BufferPool::Acquisition out;
  out.data = std::shared_ptr<float>(owner, slot);
  out.version = std::shared_ptr<std::atomic<uint64_t>>(owner, &owner->version);
  return out;
}

void PlanArena::RecordFree(size_t event_index) {
  if (phase_ != Phase::kMeasure) return;  // death after FinishMeasure: already infinite
  events_[event_index].free_tick = tick_++;
}

}  // namespace exec
}  // namespace urcl
