// Static-graph compiled executor (DESIGN.md §12, ROADMAP open item 1).
//
// The steady-state training/inference step replays the *same* autograd graph
// thousands of times per stage; the tape re-discovers it every step: every op
// heap-allocates a Node, a backward closure and a parents vector, acquires
// pool storage under a mutex, and re-derives shapes. CompiledPlan captures
// one tape build of the graph through the autograd/record.h listener and
// turns it into a define-once/run-many program:
//
//   capture   GraphRecorder observes the op stream (kind, parents, closed-
//             form attributes) and classifies every leaf: trainable
//             parameter (kept as a Variable so gradient accumulation and
//             Adam state stay the tape's), per-step input (rebound every
//             run by storage identity), or captured constant (e.g. the
//             dense graph supports, which are step-invariant for a fixed
//             adjacency).
//   compile   Ahead-of-time shape inference re-derives every op's output
//             shape closed-form (reusing the autograd/lint.cc rules) and
//             must agree with the captured shapes; the backward program is
//             derived by replaying Variable::BackwardWithSeed's exact DFS
//             over the slot graph; elementwise gate chains
//             Mul(Tanh(Add(x,b1)), Sigmoid(Add(y,b2))) are fused into one
//             parallel pass; value lifetimes are analyzed so dead
//             intermediates are dropped at their last use.
//   measure   One instrumented execution records every storage acquisition
//             and its lifetime; exec::PlanArena packs them into a single
//             arena block with lifetime-based slot reuse (arena.h).
//   replay    Steady-state runs execute direct kernel thunks over arena
//             slots: zero tape nodes, zero closures, zero BufferPool
//             acquisitions. Results are bitwise-identical to the tape —
//             forward values, gradients, and Adam state — because every
//             thunk runs the same ops:: kernel sequence in the same order
//             on the same operands (asserted by memcmp in tests/exec_test).
//
// The tape remains the reference path and the fallback: captures abort on
// anything unreplayable (dropout's per-step RNG mask, graphs built outside
// the listener) and callers fall back per the contract in DESIGN.md §12.
// URCL_EXEC=tape disables the compiled executor process-wide.
#ifndef URCL_EXEC_PLAN_H_
#define URCL_EXEC_PLAN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "autograd/record.h"
#include "autograd/variable.h"
#include "exec/arena.h"
#include "tensor/tensor.h"

namespace urcl {
namespace exec {

// Process-wide executor selection. kPlan compiles steady-state graphs;
// kTape is the escape hatch (URCL_EXEC=tape).
enum class ExecutorMode { kPlan, kTape };

// Initial mode from the URCL_EXEC environment variable ("tape" selects the
// tape; anything else, including unset, selects the compiled executor).
ExecutorMode DefaultExecutorMode();
const char* ExecutorModeName(ExecutorMode mode);

// One value slot in the compiled program: an op output, or one of the three
// leaf classes the recorder distinguishes.
struct Slot {
  enum class Kind { kConstant, kInput, kParam, kOp };

  Kind kind = Kind::kConstant;
  Shape shape;
  bool requires_grad = false;
  int input_index = -1;                     // kInput: position in BindInputs
  Tensor constant{Shape{}};                 // kConstant: captured value
  std::optional<autograd::Variable> param;  // kParam: the live parameter
  int producer = -1;                        // kOp: producing instruction
};

// One instruction: re-executes an op via the shared ops:: kernels.
struct Instr {
  autograd::record::OpKind kind = autograd::record::OpKind::kAdd;
  bool is_alias = false;  // StopGradient: out aliases parents[0]'s value
  autograd::record::OpAttrs attrs;
  int out = -1;
  std::vector<int> parents;

  // Compile-time precomputation (mirrors what the tape closures capture).
  Shape out_shape;
  Shape kept;                        // sum/mean keepdims shape
  float scale = 0.0f;                // mean re-broadcast scale
  std::vector<int64_t> inverse_perm; // transpose backward
  int64_t canonical = 0;             // concat/pad/softmax canonical axis

  bool skipped = false;   // forward covered by a fused instruction
  int fused_index = -1;   // >= 0: run fused_gates[fused_index] instead
  int last_fwd_use = -1;  // liveness: last instr reading this instr's out
};

// A fused Mul(Tanh(Add(x,b1)), Sigmoid(Add(y,b2))) gate: one parallel pass
// writes the tanh, sigmoid and product slots, eliding both broadcast adds.
// Per-element math is exactly the unfused kernels' scalar form, so results
// are bitwise identical.
struct FusedGate {
  int x = -1, b1 = -1;  // tanh branch: full-shape input, [1,C,1,1] bias
  int y = -1, b2 = -1;  // sigmoid branch
  int tanh_out = -1, sigmoid_out = -1, mul_out = -1;
};

class CompiledPlan {
 public:
  struct CaptureResult {
    std::unique_ptr<CompiledPlan> plan;  // null: capture failed, use the tape
    std::optional<autograd::Variable> root;  // the tape build's result
    std::string error;                       // why capture failed
  };

  // Runs `build` (a tape forward) under the capture listener and compiles
  // the recorded graph. `inputs` are the per-step tensors, identified by
  // storage, that BindInputs rebinds each run. The tape Variable is
  // returned so the capturing step can still complete on the tape.
  //
  // When `with_backward`, the gradient program is compiled too and the
  // measure run executes forward+backward — accumulating real parameter
  // gradients as a side effect. Callers must ZeroGrad afterwards.
  static CaptureResult Capture(const std::vector<Tensor>& inputs,
                               const std::function<autograd::Variable()>& build,
                               bool with_backward);

  // Rebinds the per-step inputs (shapes must match capture) and refreshes
  // parameter and constant slot values. Call before every RunForward.
  void BindInputs(const std::vector<Tensor>& inputs);

  // Executes the forward program; returns the root value (plan-owned
  // storage, overwritten by the next run — callers needing to retain it
  // must Clone). For with_backward plans the arena replay spans
  // RunForward..RunBackward; call RunBackward or Abort before the next run.
  Tensor RunForward();

  // Executes the gradient program, seeding the (scalar) root with ones.
  // Parameter gradients accumulate through Variable::AccumulateGrad, so
  // ClipGradNorm/Adam behave exactly as after a tape backward.
  void RunBackward();

  // Abandons a started run (e.g. the trainer quarantined a non-finite
  // loss between forward and backward) and resets the arena.
  void Abort();

  bool with_backward() const { return with_backward_; }
  int num_inputs() const { return static_cast<int>(input_shapes_.size()); }
  const Shape& input_shape(int index) const { return input_shapes_[static_cast<size_t>(index)]; }
  const PlanArena& arena() const { return arena_; }
  int64_t num_instrs() const { return static_cast<int64_t>(instrs_.size()); }
  int64_t num_fused() const { return static_cast<int64_t>(fused_gates_.size()); }

 private:
  friend class GraphRecorder;

  CompiledPlan() = default;

  // Compilation stages (see plan.cc).
  bool InferShapes(std::string* error);
  void DetectFusion();
  bool CompileBackward(std::string* error);
  void AnalyzeLiveness();
  bool Measure(const std::vector<Tensor>& inputs, std::string* error);

  // Execution.
  Tensor EvalForward(const Instr& instr);
  void RunFusedGate(const FusedGate& gate);
  void ExecBackwardThunk(const Instr& instr);
  void AccumulateSlot(int slot, const Tensor& delta);
  void ClearRunState();

  std::vector<Slot> slots_;
  std::vector<Instr> instrs_;
  std::vector<FusedGate> fused_gates_;
  std::vector<Shape> input_shapes_;
  int root_ = -1;
  bool with_backward_ = false;
  std::vector<int> backward_order_;  // post-order slots, executed in reverse
  std::vector<uint8_t> needed_in_backward_;
  std::vector<std::vector<int>> drop_after_;  // instr -> slots dead after it

  PlanArena arena_;
  bool measuring_ = false;
  bool run_open_ = false;  // forward ran, backward pending

  // Run state (sized once at compile; no allocation during Run).
  std::vector<Tensor> values_;
  std::vector<Tensor> grads_;
  std::vector<uint8_t> has_grad_;
  Tensor empty_{Shape{}};    // premade: dropping a slot is a cheap copy
  Tensor root_out_{Shape{}}; // pool-backed output buffer, reused every run
};

// A small shape-keyed cache of compiled plans for one graph family (the
// trainer keys train/virtual/per-item families separately; serving keys by
// snapshot version). Not thread-safe; callers serialize externally.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 8) : capacity_(capacity) {}

  // Ready plan for this key, or null.
  CompiledPlan* Lookup(const std::string& key);
  // True when this key has no entry yet and the cache has room — the caller
  // should capture this step. Keys beyond capacity, and keys whose capture
  // failed, stay on the tape permanently.
  bool ShouldCapture(const std::string& key) const;
  // Registers a capture outcome (null plan = permanent tape fallback).
  void Insert(const std::string& key, std::unique_ptr<CompiledPlan> plan);
  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }
  // Entries holding a live plan (failed captures are cached as null).
  size_t num_compiled() const {
    size_t n = 0;
    for (const auto& [key, entry] : entries_) n += entry.plan != nullptr ? 1 : 0;
    return n;
  }

  // Cache key from tensor shapes, e.g. "8x2x6x12|8x2x6x3".
  static std::string ShapeKey(std::initializer_list<const Tensor*> tensors);

 private:
  struct Entry {
    std::unique_ptr<CompiledPlan> plan;  // null = failed capture
  };
  size_t capacity_;
  std::map<std::string, Entry> entries_;
};

}  // namespace exec
}  // namespace urcl

#endif  // URCL_EXEC_PLAN_H_
