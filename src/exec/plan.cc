#include "exec/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "autograd/lint.h"
#include "common/check.h"
#include "runtime/parallel.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace exec {

namespace top = ::urcl::ops;
using autograd::Variable;
using autograd::record::OpAttrs;
using autograd::record::OpKind;

ExecutorMode DefaultExecutorMode() {
  const char* value = std::getenv("URCL_EXEC");
  if (value != nullptr && std::string(value) == "tape") return ExecutorMode::kTape;
  return ExecutorMode::kPlan;
}

const char* ExecutorModeName(ExecutorMode mode) {
  return mode == ExecutorMode::kPlan ? "plan" : "tape";
}

namespace {

// Kind -> tape op_name, so ahead-of-time shape inference literally reuses the
// autograd/lint.cc closed-form rules keyed by those names.
const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kDiv: return "div";
    case OpKind::kAddScalar: return "add_scalar";
    case OpKind::kMulScalar: return "mul_scalar";
    case OpKind::kExp: return "exp";
    case OpKind::kLog: return "log";
    case OpKind::kSqrt: return "sqrt";
    case OpKind::kAbs: return "abs";
    case OpKind::kTanh: return "tanh";
    case OpKind::kSigmoid: return "sigmoid";
    case OpKind::kRelu: return "relu";
    case OpKind::kLeakyRelu: return "leaky_relu";
    case OpKind::kSquare: return "square";
    case OpKind::kMatMul: return "matmul";
    case OpKind::kSum: return "sum";
    case OpKind::kMean: return "mean";
    case OpKind::kReshape: return "reshape";
    case OpKind::kTranspose: return "transpose";
    case OpKind::kSlice: return "slice";
    case OpKind::kConcat: return "concat";
    case OpKind::kPad: return "pad";
    case OpKind::kBroadcastTo: return "broadcast_to";
    case OpKind::kSoftmax: return "softmax";
    case OpKind::kTemporalConv2d: return "temporal_conv2d";
    case OpKind::kDropout: return "dropout";
  }
  return "?";
}

// Same rule as ops.cc: shape of a keepdims=true reduction result.
Shape KeepdimsShape(const Shape& in, const std::vector<int64_t>& axes) {
  std::vector<int64_t> dims = in.dims();
  if (axes.empty()) {
    for (auto& d : dims) d = 1;
  } else {
    for (const int64_t axis : axes) dims[static_cast<size_t>(in.CanonicalAxis(axis))] = 1;
  }
  return Shape(dims);
}

Shape ReducedShape(const Shape& in, const std::vector<int64_t>& axes, bool keepdims) {
  const Shape kept = KeepdimsShape(in, axes);
  if (keepdims) return kept;
  std::vector<int64_t> dims;
  for (int64_t i = 0; i < in.rank(); ++i) {
    if (kept.dim(i) == in.dim(i)) {
      dims.push_back(in.dim(i));
    } else if (in.dim(i) == 1) {
      // A size-1 axis named in `axes` is still removed.
    } else {
      // reduced axis, dropped
    }
  }
  // The loop above cannot distinguish reduced size-1 axes from kept ones;
  // recompute precisely from canonical axes instead.
  dims.clear();
  std::vector<int64_t> canon;
  if (axes.empty()) {
    for (int64_t i = 0; i < in.rank(); ++i) canon.push_back(i);
  } else {
    for (const int64_t a : axes) canon.push_back(in.CanonicalAxis(a));
  }
  for (int64_t i = 0; i < in.rank(); ++i) {
    if (std::find(canon.begin(), canon.end(), i) == canon.end()) dims.push_back(in.dim(i));
  }
  return Shape(dims);
}

}  // namespace

// Observes the capture build's op stream and assembles the plan's slot graph.
class GraphRecorder : public autograd::record::TapeListener {
 public:
  GraphRecorder(CompiledPlan* plan, const std::vector<Tensor>& inputs)
      : plan_(plan), inputs_(inputs) {}

  void OnOp(OpKind kind, const Variable& out, std::initializer_list<const Variable*> parents,
            const OpAttrs& attrs) override {
    if (!error_.empty()) return;
    if (kind == OpKind::kDropout) {
      error_ = "dropout draws a per-step RNG mask; the graph is not replayable";
      return;
    }
    Instr instr;
    instr.kind = kind;
    instr.attrs = attrs;
    for (const Variable* p : parents) instr.parents.push_back(SlotFor(*p));
    if (!error_.empty()) return;
    Finish(out, std::move(instr));
  }

  void OnOpN(OpKind kind, const Variable& out, const std::vector<Variable>& parents,
             const OpAttrs& attrs) override {
    if (!error_.empty()) return;
    Instr instr;
    instr.kind = kind;
    instr.attrs = attrs;
    for (const Variable& p : parents) instr.parents.push_back(SlotFor(p));
    if (!error_.empty()) return;
    Finish(out, std::move(instr));
  }

  void OnAlias(const Variable& out, const Variable& in) override {
    if (!error_.empty()) return;
    Instr instr;
    instr.is_alias = true;
    instr.parents.push_back(SlotFor(in));
    if (!error_.empty()) return;
    Finish(out, std::move(instr));
  }

  // Slot index of a Variable seen during capture, or -1.
  int SlotIndexOf(const Variable& v) const {
    auto it = slot_of_.find(v.internal_node().get());
    return it == slot_of_.end() ? -1 : it->second;
  }

  const std::string& error() const { return error_; }

 private:
  int SlotFor(const Variable& v) {
    const auto* node = v.internal_node().get();
    auto it = slot_of_.find(node);
    if (it != slot_of_.end()) return it->second;
    // An unseen leaf. If it carries a backward closure it is an op output
    // produced before the listener was installed — capturing it as a
    // constant would silently freeze a live subgraph, so abort instead.
    if (v.internal_node()->backward_fn) {
      error_ = "graph region was built outside the capture listener";
      return 0;
    }
    Slot slot;
    slot.shape = v.shape();
    if (v.requires_grad()) {
      slot.kind = Slot::Kind::kParam;
      slot.requires_grad = true;
      slot.param = v;
    } else {
      int input_index = -1;
      for (size_t i = 0; i < inputs_.size(); ++i) {
        if (inputs_[i].data() == v.value().data()) {
          input_index = static_cast<int>(i);
          break;
        }
      }
      if (input_index >= 0) {
        slot.kind = Slot::Kind::kInput;
        slot.input_index = input_index;
      } else {
        // Step-invariant by construction: anything rebuilt per step flows
        // through ops under the listener or is named as an input.
        slot.kind = Slot::Kind::kConstant;
        slot.constant = v.value();
      }
    }
    return Register(v, std::move(slot));
  }

  void Finish(const Variable& out, Instr instr) {
    Slot slot;
    slot.kind = Slot::Kind::kOp;
    slot.shape = out.shape();
    slot.requires_grad = out.requires_grad();
    slot.producer = static_cast<int>(plan_->instrs_.size());
    instr.out = Register(out, std::move(slot));
    plan_->instrs_.push_back(std::move(instr));
  }

  int Register(const Variable& v, Slot slot) {
    const int index = static_cast<int>(plan_->slots_.size());
    plan_->slots_.push_back(std::move(slot));
    slot_of_[v.internal_node().get()] = index;
    // Pin every node seen: tape nodes for grad-free subgraphs are not kept
    // alive by their consumers (parents are only recorded when gradients
    // flow), and a freed node's address could be reused by a later node,
    // which would corrupt the identity map.
    pinned_.push_back(v);
    return index;
  }

  CompiledPlan* plan_;
  const std::vector<Tensor>& inputs_;
  std::unordered_map<const void*, int> slot_of_;
  std::vector<Variable> pinned_;
  std::string error_;
};

CompiledPlan::CaptureResult CompiledPlan::Capture(
    const std::vector<Tensor>& inputs, const std::function<Variable()>& build,
    bool with_backward) {
  CaptureResult result;
  std::unique_ptr<CompiledPlan> plan(new CompiledPlan());
  plan->with_backward_ = with_backward;
  for (const Tensor& t : inputs) plan->input_shapes_.push_back(t.shape());
  GraphRecorder recorder(plan.get(), inputs);
  {
    autograd::record::ListenerScope scope(&recorder);
    result.root = build();
  }
  if (!recorder.error().empty()) {
    result.error = recorder.error();
    return result;
  }
  plan->root_ = recorder.SlotIndexOf(*result.root);
  if (plan->root_ < 0 || plan->slots_[static_cast<size_t>(plan->root_)].kind != Slot::Kind::kOp) {
    result.error = "root was not produced under the capture listener";
    return result;
  }
  if (with_backward) {
    if (!result.root->requires_grad()) {
      result.error = "backward requested but the root does not require grad";
      return result;
    }
    if (result.root->shape().NumElements() != 1) {
      result.error = "backward requires a scalar root";
      return result;
    }
  }
  if (!plan->InferShapes(&result.error)) return result;
  plan->DetectFusion();
  if (with_backward && !plan->CompileBackward(&result.error)) return result;
  plan->AnalyzeLiveness();
  if (!plan->Measure(inputs, &result.error)) return result;
  result.plan = std::move(plan);
  return result;
}

bool CompiledPlan::InferShapes(std::string* error) {
  const auto shape_of = [this](int s) -> const Shape& {
    return slots_[static_cast<size_t>(s)].shape;
  };
  for (Instr& instr : instrs_) {
    const Shape& got = shape_of(instr.out);
    Shape expect;
    bool known = true;
    if (instr.is_alias) {
      expect = shape_of(instr.parents[0]);
    } else {
      const std::string name = OpKindName(instr.kind);
      if (autograd::IsBroadcastBinary(name)) {
        if (!autograd::TryBroadcast(shape_of(instr.parents[0]), shape_of(instr.parents[1]),
                                    &expect)) {
          *error = "AOT shape inference: incompatible broadcast for " + name;
          return false;
        }
      } else if (autograd::IsShapePreserving(name)) {
        expect = shape_of(instr.parents[0]);
      } else {
        switch (instr.kind) {
          case OpKind::kMatMul: {
            const Shape& a = shape_of(instr.parents[0]);
            const Shape& b = shape_of(instr.parents[1]);
            if (a.rank() < 2 || b.rank() < 2 || a.dim(a.rank() - 1) != b.dim(b.rank() - 2)) {
              *error = "AOT shape inference: matmul inner-dimension mismatch";
              return false;
            }
            std::vector<int64_t> a_batch(a.dims().begin(), a.dims().end() - 2);
            std::vector<int64_t> b_batch(b.dims().begin(), b.dims().end() - 2);
            Shape batch;
            if (!autograd::TryBroadcast(Shape(a_batch), Shape(b_batch), &batch)) {
              *error = "AOT shape inference: matmul batch dims incompatible";
              return false;
            }
            std::vector<int64_t> dims = batch.dims();
            dims.push_back(a.dim(a.rank() - 2));
            dims.push_back(b.dim(b.rank() - 1));
            expect = Shape(dims);
            break;
          }
          case OpKind::kSum:
          case OpKind::kMean:
            expect = ReducedShape(shape_of(instr.parents[0]), instr.attrs.ints, instr.attrs.flag);
            break;
          case OpKind::kReshape:
          case OpKind::kBroadcastTo:
            expect = Shape(instr.attrs.ints);
            break;
          case OpKind::kTranspose: {
            const Shape& in = shape_of(instr.parents[0]);
            std::vector<int64_t> dims(instr.attrs.ints.size());
            for (size_t i = 0; i < dims.size(); ++i) {
              dims[i] = in.dim(in.CanonicalAxis(instr.attrs.ints[i]));
            }
            expect = Shape(dims);
            break;
          }
          case OpKind::kSlice:
            expect = Shape(instr.attrs.ints2);
            break;
          case OpKind::kConcat: {
            const Shape& first = shape_of(instr.parents[0]);
            const int64_t canonical = first.CanonicalAxis(instr.attrs.axis);
            std::vector<int64_t> dims = first.dims();
            for (size_t i = 1; i < instr.parents.size(); ++i) {
              dims[static_cast<size_t>(canonical)] += shape_of(instr.parents[i]).dim(canonical);
            }
            expect = Shape(dims);
            break;
          }
          case OpKind::kPad: {
            const Shape& in = shape_of(instr.parents[0]);
            const int64_t canonical = in.CanonicalAxis(instr.attrs.axis);
            std::vector<int64_t> dims = in.dims();
            dims[static_cast<size_t>(canonical)] += instr.attrs.before + instr.attrs.after;
            expect = Shape(dims);
            break;
          }
          case OpKind::kTemporalConv2d: {
            const Shape& in = shape_of(instr.parents[0]);
            const Shape& w = shape_of(instr.parents[1]);
            const int64_t t_out = in.dim(3) - instr.attrs.axis * (w.dim(3) - 1);
            expect = Shape{in.dim(0), w.dim(0), in.dim(2), t_out};
            break;
          }
          default:
            known = false;
            break;
        }
      }
    }
    if (!known) {
      *error = std::string("AOT shape inference: no rule for op ") + OpKindName(instr.kind);
      return false;
    }
    if (!(expect == got)) {
      *error = std::string("AOT shape inference: ") + OpKindName(instr.kind) +
               " disagrees with the captured output shape";
      return false;
    }
    instr.out_shape = got;
    // Compile-time backward precomputation, mirroring the tape closures'
    // captures.
    const Shape& in0 = instr.parents.empty() ? got : shape_of(instr.parents[0]);
    switch (instr.kind) {
      case OpKind::kSum:
        if (instr.is_alias) break;
        instr.kept = KeepdimsShape(in0, instr.attrs.ints);
        break;
      case OpKind::kMean:
        if (instr.is_alias) break;
        instr.kept = KeepdimsShape(in0, instr.attrs.ints);
        instr.scale = static_cast<float>(instr.kept.NumElements()) /
                      static_cast<float>(in0.NumElements());
        break;
      case OpKind::kTranspose: {
        if (instr.is_alias) break;
        instr.inverse_perm.assign(instr.attrs.ints.size(), 0);
        for (size_t i = 0; i < instr.attrs.ints.size(); ++i) {
          instr.inverse_perm[static_cast<size_t>(in0.CanonicalAxis(instr.attrs.ints[i]))] =
              static_cast<int64_t>(i);
        }
        break;
      }
      case OpKind::kConcat:
      case OpKind::kPad:
      case OpKind::kSoftmax:
        if (instr.is_alias) break;
        instr.canonical = in0.CanonicalAxis(instr.attrs.axis);
        break;
      default:
        break;
    }
  }
  return true;
}

void CompiledPlan::DetectFusion() {
  std::vector<int> consumers(slots_.size(), 0);
  for (const Instr& instr : instrs_) {
    for (const int p : instr.parents) ++consumers[static_cast<size_t>(p)];
  }
  ++consumers[static_cast<size_t>(root_)];  // the root is always a consumer
  const auto producer_of = [this](int slot) -> Instr* {
    const Slot& s = slots_[static_cast<size_t>(slot)];
    if (s.kind != Slot::Kind::kOp) return nullptr;
    Instr* instr = &instrs_[static_cast<size_t>(s.producer)];
    return instr->is_alias ? nullptr : instr;
  };
  for (Instr& mul : instrs_) {
    if (mul.is_alias || mul.kind != OpKind::kMul || mul.out_shape.rank() != 4) continue;
    Instr* tanh = producer_of(mul.parents[0]);
    Instr* sigmoid = producer_of(mul.parents[1]);
    if (tanh == nullptr || sigmoid == nullptr) continue;
    if (tanh->kind != OpKind::kTanh || sigmoid->kind != OpKind::kSigmoid) continue;
    Instr* add1 = producer_of(tanh->parents[0]);
    Instr* add2 = producer_of(sigmoid->parents[0]);
    if (add1 == nullptr || add2 == nullptr) continue;
    if (add1->kind != OpKind::kAdd || add2->kind != OpKind::kAdd) continue;
    // Every intermediate must have exactly one consumer (the chain itself).
    if (consumers[static_cast<size_t>(tanh->out)] != 1 ||
        consumers[static_cast<size_t>(sigmoid->out)] != 1 ||
        consumers[static_cast<size_t>(add1->out)] != 1 ||
        consumers[static_cast<size_t>(add2->out)] != 1) {
      continue;
    }
    // Shape discipline: full [B,C,N,T] data path, [1,C,1,1] channel biases.
    const Shape& out = mul.out_shape;
    const Shape bias_shape = Shape{1, out.dim(1), 1, 1};
    const auto shape_of = [this](int s) -> const Shape& {
      return slots_[static_cast<size_t>(s)].shape;
    };
    if (!(shape_of(add1->parents[0]) == out) || !(shape_of(add2->parents[0]) == out) ||
        !(shape_of(add1->parents[1]) == bias_shape) ||
        !(shape_of(add2->parents[1]) == bias_shape)) {
      continue;
    }
    FusedGate gate;
    gate.x = add1->parents[0];
    gate.b1 = add1->parents[1];
    gate.y = add2->parents[0];
    gate.b2 = add2->parents[1];
    gate.tanh_out = tanh->out;
    gate.sigmoid_out = sigmoid->out;
    gate.mul_out = mul.out;
    mul.fused_index = static_cast<int>(fused_gates_.size());
    fused_gates_.push_back(gate);
    tanh->skipped = true;
    sigmoid->skipped = true;
    add1->skipped = true;
    add2->skipped = true;
  }
}

bool CompiledPlan::CompileBackward(std::string* error) {
  // Byte-for-byte replication of Variable::BackwardWithSeed's iterative
  // post-order DFS over the slot graph: same visitation rule, same parent
  // order, hence the same closure execution and gradient accumulation order.
  struct Frame {
    int slot;
    size_t next_parent;
  };
  std::vector<uint8_t> visited(slots_.size(), 0);
  std::vector<Frame> stack;
  visited[static_cast<size_t>(root_)] = 1;
  stack.push_back({root_, 0});
  const std::vector<int> no_parents;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const Slot& slot = slots_[static_cast<size_t>(frame.slot)];
    // Tape nodes record parents only when gradients flow; leaves and
    // grad-free regions have none.
    const std::vector<int>& parents =
        (slot.kind == Slot::Kind::kOp && slot.requires_grad &&
         !instrs_[static_cast<size_t>(slot.producer)].is_alias)
            ? instrs_[static_cast<size_t>(slot.producer)].parents
            : no_parents;
    if (frame.next_parent < parents.size()) {
      const int parent = parents[frame.next_parent++];
      const auto parent_index = static_cast<size_t>(parent);
      if (slots_[parent_index].requires_grad && !visited[parent_index]) {
        visited[parent_index] = 1;
        stack.push_back({parent, 0});
      }
    } else {
      backward_order_.push_back(frame.slot);
      stack.pop_back();
    }
  }
  if (backward_order_.empty()) {
    *error = "empty backward program";
    return false;
  }
  return true;
}

void CompiledPlan::AnalyzeLiveness() {
  drop_after_.assign(instrs_.size(), {});
  std::vector<int> last_use(slots_.size(), -1);
  for (size_t i = 0; i < instrs_.size(); ++i) {
    const Instr& instr = instrs_[i];
    if (instr.skipped) continue;  // reads happen at the fused site instead
    if (instr.fused_index >= 0) {
      const FusedGate& gate = fused_gates_[static_cast<size_t>(instr.fused_index)];
      for (const int s : {gate.x, gate.b1, gate.y, gate.b2}) {
        last_use[static_cast<size_t>(s)] = static_cast<int>(i);
      }
      continue;
    }
    for (const int p : instr.parents) last_use[static_cast<size_t>(p)] = static_cast<int>(i);
  }
  needed_in_backward_.assign(slots_.size(), 0);
  if (with_backward_) {
    needed_in_backward_[static_cast<size_t>(root_)] = 1;
    for (const Instr& instr : instrs_) {
      // Backward thunks run for every grad-carrying op, fused or not.
      if (instr.is_alias || !slots_[static_cast<size_t>(instr.out)].requires_grad) continue;
      switch (instr.kind) {
        case OpKind::kMul:
        case OpKind::kDiv:
        case OpKind::kMatMul:
        case OpKind::kTemporalConv2d:
          needed_in_backward_[static_cast<size_t>(instr.parents[0])] = 1;
          needed_in_backward_[static_cast<size_t>(instr.parents[1])] = 1;
          break;
        case OpKind::kLog:
        case OpKind::kAbs:
        case OpKind::kRelu:
        case OpKind::kLeakyRelu:
        case OpKind::kSquare:
          needed_in_backward_[static_cast<size_t>(instr.parents[0])] = 1;
          break;
        case OpKind::kExp:
        case OpKind::kSqrt:
        case OpKind::kTanh:
        case OpKind::kSigmoid:
        case OpKind::kSoftmax:
          needed_in_backward_[static_cast<size_t>(instr.out)] = 1;
          break;
        default:
          break;
      }
    }
  }
  for (size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].kind != Slot::Kind::kOp) continue;  // leaves are rebound, never dropped
    if (static_cast<int>(s) == root_ || needed_in_backward_[s]) continue;
    if (last_use[s] < 0) continue;
    drop_after_[static_cast<size_t>(last_use[s])].push_back(static_cast<int>(s));
  }
}

bool CompiledPlan::Measure(const std::vector<Tensor>& inputs, std::string* error) {
  values_.assign(slots_.size(), empty_);
  grads_.assign(slots_.size(), empty_);
  has_grad_.assign(slots_.size(), 0);
  root_out_ = Tensor(slots_[static_cast<size_t>(root_)].shape);
  measuring_ = true;
  arena_.BeginMeasure();
  BindInputs(inputs);
  RunForward();
  if (with_backward_) RunBackward();
  measuring_ = false;
  if (!arena_.FinishMeasure()) {
    *error = "arena layout validation failed";
    return false;
  }
  return true;
}

void CompiledPlan::BindInputs(const std::vector<Tensor>& inputs) {
  URCL_CHECK_EQ(inputs.size(), input_shapes_.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    URCL_CHECK(inputs[i].shape() == input_shapes_[i])
        << "BindInputs shape mismatch at input " << i;
  }
  for (size_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = slots_[s];
    switch (slot.kind) {
      case Slot::Kind::kConstant:
        values_[s] = slot.constant;
        break;
      case Slot::Kind::kInput:
        values_[s] = inputs[static_cast<size_t>(slot.input_index)];
        break;
      case Slot::Kind::kParam:
        // Re-read every run: SetValue (checkpoint restore, the RMIR virtual
        // step) may have replaced the parameter's storage.
        values_[s] = slot.param->value();
        break;
      case Slot::Kind::kOp:
        values_[s] = empty_;
        break;
    }
  }
}

Tensor CompiledPlan::RunForward() {
  URCL_CHECK(!run_open_) << "RunForward while a backward is pending";
  if (!measuring_) arena_.BeginReplay();
  run_open_ = with_backward_;
  {
    pool::StorageHookScope hook(&arena_);
    for (size_t i = 0; i < instrs_.size(); ++i) {
      const Instr& instr = instrs_[i];
      if (instr.skipped) {
        // covered by a fused gate
      } else if (instr.fused_index >= 0) {
        RunFusedGate(fused_gates_[static_cast<size_t>(instr.fused_index)]);
      } else {
        values_[static_cast<size_t>(instr.out)] = EvalForward(instr);
      }
      for (const int dead : drop_after_[i]) values_[static_cast<size_t>(dead)] = empty_;
    }
    root_out_.CopyFrom(values_[static_cast<size_t>(root_)]);
  }
  if (!with_backward_) {
    if (!measuring_) arena_.EndReplay();
    ClearRunState();
  }
  return root_out_;
}

void CompiledPlan::RunBackward() {
  URCL_CHECK(with_backward_ && run_open_) << "RunBackward without a forward";
  {
    pool::StorageHookScope hook(&arena_);
    AccumulateSlot(root_, Tensor::Full(slots_[static_cast<size_t>(root_)].shape, 1.0f));
    for (auto it = backward_order_.rbegin(); it != backward_order_.rend(); ++it) {
      const int s = *it;
      const Slot& slot = slots_[static_cast<size_t>(s)];
      // Same skip rule as the tape: leaves have no closure; a slot whose
      // gradient never arrived (quarantined path upstream) contributes
      // nothing.
      if (slot.kind != Slot::Kind::kOp) continue;
      if (!has_grad_[static_cast<size_t>(s)]) continue;
      const Instr& instr = instrs_[static_cast<size_t>(slot.producer)];
      if (instr.is_alias) continue;
      ExecBackwardThunk(instr);
      // A slot's gradient and value are dead once its own thunk ran: every
      // consumer's thunk ran earlier (reverse topological order).
      grads_[static_cast<size_t>(s)] = empty_;
      has_grad_[static_cast<size_t>(s)] = 0;
      if (s != root_) values_[static_cast<size_t>(s)] = empty_;
    }
  }
  if (!measuring_) arena_.EndReplay();
  run_open_ = false;
  ClearRunState();
}

void CompiledPlan::Abort() {
  if (run_open_ && !measuring_) arena_.AbortReplay();
  run_open_ = false;
  ClearRunState();
}

void CompiledPlan::ClearRunState() {
  for (size_t s = 0; s < slots_.size(); ++s) {
    values_[s] = empty_;
    grads_[s] = empty_;
    has_grad_[s] = 0;
  }
}

Tensor CompiledPlan::EvalForward(const Instr& instr) {
  const auto V = [this, &instr](size_t i) -> const Tensor& {
    return values_[static_cast<size_t>(instr.parents[i])];
  };
  if (instr.is_alias) return V(0);
  switch (instr.kind) {
    case OpKind::kAdd: return top::Add(V(0), V(1));
    case OpKind::kSub: return top::Sub(V(0), V(1));
    case OpKind::kMul: return top::Mul(V(0), V(1));
    case OpKind::kDiv: return top::Div(V(0), V(1));
    case OpKind::kAddScalar: return top::AddScalar(V(0), instr.attrs.scalar);
    case OpKind::kMulScalar: return top::MulScalar(V(0), instr.attrs.scalar);
    case OpKind::kExp: return top::Exp(V(0));
    case OpKind::kLog: return top::Log(V(0));
    case OpKind::kSqrt: return top::Sqrt(V(0));
    case OpKind::kAbs: return top::Abs(V(0));
    case OpKind::kTanh: return top::Tanh(V(0));
    case OpKind::kSigmoid: return top::Sigmoid(V(0));
    case OpKind::kRelu: return top::Relu(V(0));
    case OpKind::kLeakyRelu: {
      const float slope = instr.attrs.scalar;
      return top::Map(V(0), [slope](float x) { return x > 0.0f ? x : slope * x; });
    }
    case OpKind::kSquare: return top::Square(V(0));
    case OpKind::kMatMul: return top::MatMul(V(0), V(1));
    case OpKind::kSum: return top::Sum(V(0), instr.attrs.ints, instr.attrs.flag);
    case OpKind::kMean: return top::Mean(V(0), instr.attrs.ints, instr.attrs.flag);
    case OpKind::kReshape: return V(0).Reshape(instr.out_shape);
    case OpKind::kTranspose: return top::Transpose(V(0), instr.attrs.ints);
    case OpKind::kSlice: return top::Slice(V(0), instr.attrs.ints, instr.attrs.ints2);
    case OpKind::kConcat: {
      std::vector<Tensor> parts;
      parts.reserve(instr.parents.size());
      for (const int p : instr.parents) parts.push_back(values_[static_cast<size_t>(p)]);
      return top::Concat(parts, instr.attrs.axis);
    }
    case OpKind::kPad:
      return top::Pad(V(0), instr.attrs.axis, instr.attrs.before, instr.attrs.after);
    case OpKind::kBroadcastTo: return top::BroadcastTo(V(0), instr.out_shape);
    case OpKind::kSoftmax: return top::Softmax(V(0), instr.attrs.axis);
    case OpKind::kTemporalConv2d: return top::TemporalConv2d(V(0), V(1), instr.attrs.axis);
    case OpKind::kDropout: break;
  }
  URCL_CHECK(false) << "unreplayable op in compiled plan";
  return empty_;
}

void CompiledPlan::RunFusedGate(const FusedGate& gate) {
  const Tensor& x = values_[static_cast<size_t>(gate.x)];
  const Tensor& b1 = values_[static_cast<size_t>(gate.b1)];
  const Tensor& y = values_[static_cast<size_t>(gate.y)];
  const Tensor& b2 = values_[static_cast<size_t>(gate.b2)];
  Tensor t = Tensor::Uninitialized(x.shape());
  Tensor s = Tensor::Uninitialized(x.shape());
  Tensor o = Tensor::Uninitialized(x.shape());
  const int64_t channels = x.dim(1);
  const int64_t rows = x.dim(0) * channels;
  const int64_t row_len = x.dim(2) * x.dim(3);
  const float* px = x.data();
  const float* py = y.data();
  const float* pb1 = b1.data();
  const float* pb2 = b2.data();
  float* pt = t.mutable_data();
  float* ps = s.mutable_data();
  float* po = o.mutable_data();
  const int64_t grain = std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, row_len));
  runtime::ParallelFor(0, rows, grain, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t r = row_begin; r < row_end; ++r) {
      const int64_t c = r % channels;
      const float bias1 = pb1[c];
      const float bias2 = pb2[c];
      const int64_t base = r * row_len;
      for (int64_t i = 0; i < row_len; ++i) {
        // Exactly the unfused scalar math: one rounding per add (IEEE, same
        // as the SIMD broadcast add), std::tanh / the sigmoid expression
        // verbatim from tensor_ops.cc, then the product — so the three
        // written slots are bitwise what Tanh(Add(...)) etc. would produce.
        const float tv = std::tanh(px[base + i] + bias1);
        const float sv = 1.0f / (1.0f + std::exp(-(py[base + i] + bias2)));
        pt[base + i] = tv;
        ps[base + i] = sv;
        po[base + i] = tv * sv;
      }
    }
  });
  values_[static_cast<size_t>(gate.tanh_out)] = t;
  values_[static_cast<size_t>(gate.sigmoid_out)] = s;
  values_[static_cast<size_t>(gate.mul_out)] = o;
}

void CompiledPlan::AccumulateSlot(int slot_index, const Tensor& delta) {
  Slot& slot = slots_[static_cast<size_t>(slot_index)];
  if (slot.kind == Slot::Kind::kParam) {
    // Parameters keep the tape's accumulation machinery (and thus exactly
    // its semantics), so ClipGradNorm and Adam see nothing new.
    slot.param->AccumulateGrad(delta);
    return;
  }
  if (!slot.requires_grad) return;
  URCL_CHECK(delta.shape() == slot.shape) << "gradient shape mismatch in compiled plan";
  if (!has_grad_[static_cast<size_t>(slot_index)]) {
    grads_[static_cast<size_t>(slot_index)] = delta.Clone();
    has_grad_[static_cast<size_t>(slot_index)] = 1;
  } else {
    grads_[static_cast<size_t>(slot_index)].AddInPlace(delta);
  }
}

void CompiledPlan::ExecBackwardThunk(const Instr& instr) {
  const Tensor& g = grads_[static_cast<size_t>(instr.out)];
  const auto V = [this, &instr](size_t i) -> const Tensor& {
    return values_[static_cast<size_t>(instr.parents[i])];
  };
  const auto needs = [this, &instr](size_t i) {
    return slots_[static_cast<size_t>(instr.parents[i])].requires_grad;
  };
  const auto shape = [this, &instr](size_t i) -> const Shape& {
    return slots_[static_cast<size_t>(instr.parents[i])].shape;
  };
  const int p0 = instr.parents.empty() ? -1 : instr.parents[0];
  const int p1 = instr.parents.size() > 1 ? instr.parents[1] : -1;
  switch (instr.kind) {
    case OpKind::kAdd:
      if (needs(0)) AccumulateSlot(p0, top::ReduceTo(g, shape(0)));
      if (needs(1)) AccumulateSlot(p1, top::ReduceTo(g, shape(1)));
      break;
    case OpKind::kSub:
      if (needs(0)) AccumulateSlot(p0, top::ReduceTo(g, shape(0)));
      if (needs(1)) AccumulateSlot(p1, top::ReduceTo(top::Neg(g), shape(1)));
      break;
    case OpKind::kMul:
      if (needs(0)) AccumulateSlot(p0, top::ReduceTo(top::Mul(g, V(1)), shape(0)));
      if (needs(1)) AccumulateSlot(p1, top::ReduceTo(top::Mul(g, V(0)), shape(1)));
      break;
    case OpKind::kDiv:
      if (needs(0)) AccumulateSlot(p0, top::ReduceTo(top::Div(g, V(1)), shape(0)));
      if (needs(1)) {
        const Tensor b2 = top::Square(V(1));
        const Tensor db = top::Neg(top::Div(top::Mul(g, V(0)), b2));
        AccumulateSlot(p1, top::ReduceTo(db, shape(1)));
      }
      break;
    case OpKind::kAddScalar:
      if (needs(0)) AccumulateSlot(p0, g);
      break;
    case OpKind::kMulScalar:
      if (needs(0)) AccumulateSlot(p0, top::MulScalar(g, instr.attrs.scalar));
      break;
    case OpKind::kExp:
      if (needs(0)) AccumulateSlot(p0, top::Mul(g, values_[static_cast<size_t>(instr.out)]));
      break;
    case OpKind::kLog:
      if (needs(0)) AccumulateSlot(p0, top::Div(g, V(0)));
      break;
    case OpKind::kSqrt:
      if (needs(0)) {
        const Tensor& saved = values_[static_cast<size_t>(instr.out)];
        AccumulateSlot(p0, top::Div(g, top::MulScalar(saved, 2.0f)));
      }
      break;
    case OpKind::kAbs:
      if (needs(0)) AccumulateSlot(p0, top::Mul(g, top::Sign(V(0))));
      break;
    case OpKind::kTanh:
      if (needs(0)) {
        const Tensor& saved = values_[static_cast<size_t>(instr.out)];
        const Tensor one_minus = top::AddScalar(top::Neg(top::Square(saved)), 1.0f);
        AccumulateSlot(p0, top::Mul(g, one_minus));
      }
      break;
    case OpKind::kSigmoid:
      if (needs(0)) {
        const Tensor& saved = values_[static_cast<size_t>(instr.out)];
        const Tensor ds = top::Mul(saved, top::AddScalar(top::Neg(saved), 1.0f));
        AccumulateSlot(p0, top::Mul(g, ds));
      }
      break;
    case OpKind::kRelu:
      if (needs(0)) {
        const Tensor mask = top::Map(V(0), [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
        AccumulateSlot(p0, top::Mul(g, mask));
      }
      break;
    case OpKind::kLeakyRelu:
      if (needs(0)) {
        const float slope = instr.attrs.scalar;
        const Tensor mask = top::Map(V(0), [slope](float x) { return x > 0.0f ? 1.0f : slope; });
        AccumulateSlot(p0, top::Mul(g, mask));
      }
      break;
    case OpKind::kSquare:
      if (needs(0)) AccumulateSlot(p0, top::Mul(g, top::MulScalar(V(0), 2.0f)));
      break;
    case OpKind::kMatMul: {
      if (needs(0)) {
        AccumulateSlot(p0, top::ReduceTo(top::MatMul(g, top::TransposeLast2(V(1))), shape(0)));
      }
      if (needs(1)) {
        AccumulateSlot(p1, top::ReduceTo(top::MatMul(top::TransposeLast2(V(0)), g), shape(1)));
      }
      break;
    }
    case OpKind::kSum:
      if (needs(0)) AccumulateSlot(p0, top::BroadcastTo(g.Reshape(instr.kept), shape(0)));
      break;
    case OpKind::kMean:
      if (needs(0)) {
        AccumulateSlot(
            p0, top::MulScalar(top::BroadcastTo(g.Reshape(instr.kept), shape(0)), instr.scale));
      }
      break;
    case OpKind::kReshape:
      if (needs(0)) AccumulateSlot(p0, g.Reshape(shape(0)));
      break;
    case OpKind::kTranspose:
      if (needs(0)) AccumulateSlot(p0, top::Transpose(g, instr.inverse_perm));
      break;
    case OpKind::kSlice:
      if (needs(0)) AccumulateSlot(p0, top::UnSlice(g, shape(0), instr.attrs.ints));
      break;
    case OpKind::kConcat: {
      int64_t offset = 0;
      for (size_t i = 0; i < instr.parents.size(); ++i) {
        const Shape& part = shape(i);
        if (needs(i)) {
          std::vector<int64_t> starts(static_cast<size_t>(g.rank()), 0);
          starts[static_cast<size_t>(instr.canonical)] = offset;
          AccumulateSlot(instr.parents[i], top::Slice(g, starts, part.dims()));
        }
        offset += part.dim(instr.canonical);
      }
      break;
    }
    case OpKind::kPad:
      if (needs(0)) {
        std::vector<int64_t> starts(static_cast<size_t>(g.rank()), 0);
        starts[static_cast<size_t>(instr.canonical)] = instr.attrs.before;
        AccumulateSlot(p0, top::Slice(g, starts, shape(0).dims()));
      }
      break;
    case OpKind::kBroadcastTo:
      if (needs(0)) AccumulateSlot(p0, top::ReduceTo(g, shape(0)));
      break;
    case OpKind::kSoftmax: {
      if (needs(0)) {
        const Tensor& saved = values_[static_cast<size_t>(instr.out)];
        const Tensor gy = top::Mul(g, saved);
        const Tensor total = top::Sum(gy, {instr.canonical}, /*keepdims=*/true);
        AccumulateSlot(p0, top::Mul(top::Sub(g, total), saved));
      }
      break;
    }
    case OpKind::kTemporalConv2d: {
      Tensor d_in(shape(0));
      Tensor d_w(shape(1));
      top::TemporalConv2dBackward(g, V(0), V(1), instr.attrs.axis, &d_in, &d_w);
      if (needs(0)) AccumulateSlot(p0, d_in);
      if (needs(1)) AccumulateSlot(p1, d_w);
      break;
    }
    case OpKind::kDropout:
      URCL_CHECK(false) << "dropout in compiled backward";
      break;
  }
}

CompiledPlan* PlanCache::Lookup(const std::string& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.plan.get();
}

bool PlanCache::ShouldCapture(const std::string& key) const {
  return entries_.find(key) == entries_.end() && entries_.size() < capacity_;
}

void PlanCache::Insert(const std::string& key, std::unique_ptr<CompiledPlan> plan) {
  entries_[key].plan = std::move(plan);
}

std::string PlanCache::ShapeKey(std::initializer_list<const Tensor*> tensors) {
  std::string key;
  for (const Tensor* t : tensors) {
    if (!key.empty()) key += '|';
    bool first = true;
    for (const int64_t d : t->shape().dims()) {
      if (!first) key += 'x';
      first = false;
      key += std::to_string(d);
    }
  }
  return key;
}

}  // namespace exec
}  // namespace urcl
