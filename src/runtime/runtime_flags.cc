#include "runtime/runtime_flags.h"

#include <cstdint>

#include "common/fault_injector.h"
#include "obs/obs.h"
#include "runtime/parallel.h"

namespace urcl {
namespace runtime {

void ApplyRuntimeFlags(const Flags& flags) {
  const int64_t threads = flags.GetInt("threads", 0);
  if (threads > 0) runtime::SetNumThreads(static_cast<int>(threads));
  fault::FaultInjector::Instance().LoadFromEnv();
  obs::InitFromEnv();
  obs::SetMetricsOutPath(flags.GetString("metrics-out", ""));
  obs::SetTraceOutPath(flags.GetString("trace-out", ""));
  obs::SetProfileOutPath(flags.GetString("profile-out", ""));
}

}  // namespace runtime
}  // namespace urcl
