// Applies the shared command-line flags that configure the process-wide
// runtime. Split out of common/flags.h so the flag *parser* stays at the
// bottom of the layer DAG (common depends on nothing) while this glue — which
// reaches up into runtime:: and obs:: — lives at the runtime layer, where the
// layering analyzer (tools/lint/layering.cc) allows those edges.
#ifndef URCL_RUNTIME_RUNTIME_FLAGS_H_
#define URCL_RUNTIME_RUNTIME_FLAGS_H_

#include "common/flags.h"

namespace urcl {
namespace runtime {

// Applies flags that configure the process-wide runtime: `--threads N` sets
// the compute thread count (runtime::SetNumThreads), the URCL_FAULT env var
// arms the fault-injection harness (common/fault_injector.h), and the
// observability layer is configured from URCL_OBS plus `--metrics-out`,
// `--trace-out` and `--profile-out` (each enables its subsystem and sets the
// file obs::WriteConfiguredOutputs() writes at exit). Call once at startup in
// any binary that accepts flags; a no-op when nothing is set.
void ApplyRuntimeFlags(const Flags& flags);

}  // namespace runtime

// Transitional alias: callers predating the common/ -> runtime/ split named
// this urcl::ApplyRuntimeFlags.
using runtime::ApplyRuntimeFlags;

}  // namespace urcl

#endif  // URCL_RUNTIME_RUNTIME_FLAGS_H_
