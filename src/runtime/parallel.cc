#include "runtime/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace urcl {
namespace runtime {
namespace {

thread_local bool t_in_parallel_region = false;

// Saves/restores the flag so nested serial fallbacks do not clear the state
// of the enclosing region on exit.
struct RegionGuard {
  bool previous;
  RegionGuard() : previous(t_in_parallel_region) { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = previous; }
};

int DefaultNumThreads() {
  if (const char* env = std::getenv("URCL_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(std::min<long>(parsed, 256));
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

}  // namespace

ExecutionContext::ExecutionContext()
    : pool_(std::make_unique<ThreadPool>(DefaultNumThreads())) {}

ExecutionContext& ExecutionContext::Get() {
  // Intentionally leaked: worker threads must never outlive their pool, and
  // static-destruction order at exit cannot guarantee that.
  static ExecutionContext* context = new ExecutionContext();
  return *context;
}

int ExecutionContext::num_threads() {
  MutexLock lock(mu_);
  return pool_->num_threads();
}

void ExecutionContext::SetNumThreads(int num_threads) {
  num_threads = std::max(num_threads, 1);
  MutexLock lock(mu_);
  if (pool_->num_threads() == num_threads) return;
  pool_.reset();  // join old workers before spawning the new pool
  pool_ = std::make_unique<ThreadPool>(num_threads);
}

void ExecutionContext::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                                   const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  const auto run_chunk = [&](int64_t chunk) {
    RegionGuard guard;
    const int64_t chunk_begin = begin + chunk * grain;
    body(chunk_begin, std::min(end, chunk_begin + grain));
  };
  if (t_in_parallel_region || num_chunks == 1) {
    // Nested or trivially small region: same chunks, caller's thread.
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) run_chunk(chunk);
    return;
  }
  MutexLock lock(mu_);
  pool_->Run(num_chunks, run_chunk);
}

void SetNumThreads(int num_threads) { ExecutionContext::Get().SetNumThreads(num_threads); }

int GetNumThreads() { return ExecutionContext::Get().num_threads(); }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  ExecutionContext::Get().ParallelFor(begin, end, grain, body);
}

bool InParallelRegion() { return t_in_parallel_region; }

}  // namespace runtime
}  // namespace urcl
