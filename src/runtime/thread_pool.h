// Deterministic fixed-size thread pool executing indexed chunks of a
// parallel region. Chunk *boundaries* are decided by the caller (ParallelFor)
// from the problem shape alone, never from the pool size, so which elements
// share a chunk is identical at any thread count — the pool only decides
// which thread runs which chunk.
#ifndef URCL_RUNTIME_THREAD_POOL_H_
#define URCL_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace urcl {
namespace runtime {

class ThreadPool {
 public:
  // `num_threads` counts the calling thread: the pool spawns num_threads - 1
  // workers (so 1 means fully serial, no threads are created).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs chunk_fn(0) .. chunk_fn(num_chunks - 1), each exactly once, on the
  // calling thread plus the workers; blocks until every chunk has finished.
  // The first exception thrown by a chunk is rethrown on the calling thread
  // (chunks not yet started are skipped once a chunk has failed).
  // Not reentrant: callers must not invoke Run from inside a chunk — nested
  // parallelism is handled one level up by ParallelFor, which runs nested
  // regions serially.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& chunk_fn);

 private:
  void WorkerLoop(int worker_index);
  void DrainChunks();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  int busy_workers_ = 0;

  // State of the active region; written under mu_ before workers are woken.
  const std::function<void(int64_t)>* chunk_fn_ = nullptr;
  int64_t num_chunks_ = 0;
  // Region submission timestamp (0 when metrics are off); workers observe
  // now - region_start_ns_ as their wake-up latency.
  int64_t region_start_ns_ = 0;
  std::atomic<int64_t> next_chunk_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
};

}  // namespace runtime
}  // namespace urcl

#endif  // URCL_RUNTIME_THREAD_POOL_H_
