// Deterministic fixed-size thread pool executing indexed chunks of a
// parallel region. Chunk *boundaries* are decided by the caller (ParallelFor)
// from the problem shape alone, never from the pool size, so which elements
// share a chunk is identical at any thread count — the pool only decides
// which thread runs which chunk.
#ifndef URCL_RUNTIME_THREAD_POOL_H_
#define URCL_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace urcl {
namespace runtime {

// When true, ThreadPool::Run hands a region to every worker even beyond the
// machine's hardware concurrency. Default false (also settable via the
// URCL_OVERSUBSCRIBE environment variable): workers beyond the core count
// only add context-switch overhead to compute-bound kernels — on a 1-core
// machine a 4-thread pool ran TemporalConv2d ~27% slower than serial.
// Race-hunting tests (TSan hammers) enable it so their interleavings still
// exercise real cross-thread execution on small CI machines.
void SetOversubscribe(bool enabled);
bool OversubscribeEnabled();

class ThreadPool {
 public:
  // `num_threads` counts the calling thread: the pool spawns num_threads - 1
  // workers (so 1 means fully serial, no threads are created).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs chunk_fn(0) .. chunk_fn(num_chunks - 1), each exactly once, on the
  // calling thread plus the workers; blocks until every chunk has finished.
  // The first exception thrown by a chunk is rethrown on the calling thread
  // (chunks not yet started are skipped once a chunk has failed).
  // Not reentrant: callers must not invoke Run from inside a chunk — nested
  // parallelism is handled one level up by ParallelFor, which runs nested
  // regions serially.
  //
  // Scheduling only — never partitioning: each region wakes at most
  // min(workers, num_chunks - 1, hardware cores - 1) workers (the calling
  // thread is the remaining lane; OversubscribeEnabled() lifts the core
  // cap). Chunk boundaries are the caller's and identical at any cap, so
  // results are unaffected; a pool wider than the machine just stops paying
  // for idle wakeups. Workers the cap excludes skip the region via the
  // claim budget and keep waiting — they never join busy accounting, so a
  // capped region can neither hang nor double-run a chunk.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& chunk_fn);

 private:
  void WorkerLoop(int worker_index);
  // Claims and runs chunks of the region described by (chunk_fn, num_chunks).
  // The region description is passed by value-from-under-the-lock rather than
  // read from the guarded members, so every member access in this class is
  // provably locked; the referenced function outlives the call because Run
  // keeps the region alive until busy_workers_ drains to zero.
  void DrainChunks(const std::function<void(int64_t)>& chunk_fn, int64_t num_chunks);

  std::vector<std::thread> workers_;
  int hardware_ = 1;  // hardware_concurrency() resolved once at construction

  Mutex mu_;
  CondVar start_cv_;
  CondVar done_cv_;
  uint64_t generation_ URCL_GUARDED_BY(mu_) = 0;
  bool shutdown_ URCL_GUARDED_BY(mu_) = false;
  int busy_workers_ URCL_GUARDED_BY(mu_) = 0;
  // Participation slots remaining in the current region; a woken worker that
  // finds the budget empty records the generation and resumes waiting.
  int claim_budget_ URCL_GUARDED_BY(mu_) = 0;

  // State of the active region; written under mu_ before workers are woken
  // and read back under mu_ by each woken worker.
  const std::function<void(int64_t)>* chunk_fn_ URCL_GUARDED_BY(mu_) = nullptr;
  int64_t num_chunks_ URCL_GUARDED_BY(mu_) = 0;
  // Region submission timestamp (0 when metrics are off); workers observe
  // now - region_start_ns_ as their wake-up latency.
  int64_t region_start_ns_ URCL_GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> next_chunk_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_ URCL_GUARDED_BY(mu_);
};

}  // namespace runtime
}  // namespace urcl

#endif  // URCL_RUNTIME_THREAD_POOL_H_
