#include "runtime/thread_pool.h"

namespace urcl {
namespace runtime {

ThreadPool::ThreadPool(int num_threads) {
  const int worker_count = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(static_cast<size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainChunks() {
  const std::function<void(int64_t)>& fn = *chunk_fn_;
  while (!failed_.load(std::memory_order_relaxed)) {
    const int64_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= num_chunks_) break;
    try {
      fn(chunk);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    DrainChunks();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::Run(int64_t num_chunks, const std::function<void(int64_t)>& chunk_fn) {
  if (num_chunks <= 0) return;
  if (workers_.empty()) {
    // Serial pool: same chunks, caller's thread, exceptions propagate as-is.
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) chunk_fn(chunk);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    chunk_fn_ = &chunk_fn;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    busy_workers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  DrainChunks();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
  chunk_fn_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace runtime
}  // namespace urcl
