#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace urcl {
namespace runtime {
namespace {

std::atomic<bool> g_oversubscribe{[] {
  const char* env = std::getenv("URCL_OVERSUBSCRIBE");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}()};

}  // namespace

void SetOversubscribe(bool enabled) {
  g_oversubscribe.store(enabled, std::memory_order_relaxed);
}

bool OversubscribeEnabled() { return g_oversubscribe.load(std::memory_order_relaxed); }

namespace {

// Registry handles for the pool's metrics, resolved once. Updates are gated
// on obs::MetricsEnabled() so a disabled build pays one relaxed load per
// region.
struct RuntimeMetrics {
  obs::Counter& regions;
  obs::Counter& chunks;
  obs::Histogram& region_ns;
  obs::Histogram& wake_delay_ns;
};

RuntimeMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Get();
  static RuntimeMetrics* metrics = new RuntimeMetrics{
      registry.GetCounter("urcl.runtime.parallel_regions"),
      registry.GetCounter("urcl.runtime.chunks"),
      registry.GetHistogram("urcl.runtime.region_ns",
                            obs::ExponentialBuckets(1024, 4, 12)),
      registry.GetHistogram("urcl.runtime.wake_delay_ns",
                            obs::ExponentialBuckets(256, 4, 12)),
  };
  return *metrics;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const unsigned hardware = std::thread::hardware_concurrency();
  hardware_ = hardware == 0 ? 1 : static_cast<int>(hardware);
  const int worker_count = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(static_cast<size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  start_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainChunks(const std::function<void(int64_t)>& chunk_fn,
                             int64_t num_chunks) {
  while (!failed_.load(std::memory_order_relaxed)) {
    const int64_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= num_chunks) break;
    try {
      chunk_fn(chunk);
    } catch (...) {
      MutexLock lock(mu_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen_generation = 0;
  bool named = false;
  for (;;) {
    int64_t region_start_ns = 0;
    const std::function<void(int64_t)>* region_fn = nullptr;
    int64_t region_chunks = 0;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen_generation) start_cv_.Wait(mu_);
      if (shutdown_) return;
      seen_generation = generation_;
      // Capped out of this region: it was sized for fewer workers than the
      // pool holds. Skip without touching busy accounting and wait for the
      // next region.
      if (claim_budget_ == 0) continue;
      --claim_budget_;
      region_start_ns = region_start_ns_;
      region_fn = chunk_fn_;
      region_chunks = num_chunks_;
    }
    // Lazily label this thread in the trace once tracing is actually on, so
    // idle workers never allocate a trace ring.
    if (!named && obs::TraceEnabled()) {
      obs::SetThreadName("worker-" + std::to_string(worker_index));
      named = true;
    }
    if (region_start_ns != 0 && obs::MetricsEnabled()) {
      Metrics().wake_delay_ns.Observe(
          static_cast<double>(MonotonicNowNs() - region_start_ns));
    }
    DrainChunks(*region_fn, region_chunks);
    {
      MutexLock lock(mu_);
      --busy_workers_;
    }
    done_cv_.NotifyOne();
  }
}

void ThreadPool::Run(int64_t num_chunks, const std::function<void(int64_t)>& chunk_fn) {
  if (num_chunks <= 0) return;
  const bool metrics = obs::MetricsEnabled();
  const int64_t start_ns = metrics ? MonotonicNowNs() : 0;
  // Workers actually worth waking: one lane is the calling thread, a chunk
  // can occupy at most one worker, and — unless oversubscription is forced —
  // lanes beyond the core count only add context switches.
  int64_t active = std::min<int64_t>(static_cast<int64_t>(workers_.size()), num_chunks - 1);
  if (!OversubscribeEnabled()) active = std::min<int64_t>(active, hardware_ - 1);
  if (active <= 0) {
    // Serial pool: same chunks, caller's thread, exceptions propagate as-is.
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) chunk_fn(chunk);
    if (metrics) {
      RuntimeMetrics& m = Metrics();
      m.regions.Add(1);
      m.chunks.Add(static_cast<uint64_t>(num_chunks));
      m.region_ns.Observe(static_cast<double>(MonotonicNowNs() - start_ns));
    }
    return;
  }
  {
    MutexLock lock(mu_);
    chunk_fn_ = &chunk_fn;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    busy_workers_ = static_cast<int>(active);
    claim_budget_ = static_cast<int>(active);
    region_start_ns_ = start_ns;
    ++generation_;
  }
  start_cv_.NotifyAll();
  DrainChunks(chunk_fn, num_chunks);
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    while (busy_workers_ != 0) done_cv_.Wait(mu_);
    chunk_fn_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
  if (metrics) {
    RuntimeMetrics& m = Metrics();
    m.regions.Add(1);
    m.chunks.Add(static_cast<uint64_t>(num_chunks));
    m.region_ns.Observe(static_cast<double>(MonotonicNowNs() - start_ns));
  }
}

}  // namespace runtime
}  // namespace urcl
