// The public parallel-execution surface of the runtime. This is the ONLY way
// kernels are allowed to use threads: ops never spawn std::thread themselves,
// they express data parallelism as ParallelFor over an index range and the
// process-wide ExecutionContext maps chunks onto its thread pool.
//
// Determinism contract: ParallelFor splits [begin, end) into fixed chunks of
// `grain` indices. Chunk boundaries depend only on (begin, end, grain) — the
// thread count decides scheduling, never partitioning — so a body that writes
// each output index exactly once and accumulates within a chunk in index
// order produces bitwise-identical results at any thread count.
#ifndef URCL_RUNTIME_PARALLEL_H_
#define URCL_RUNTIME_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "common/thread_annotations.h"
#include "runtime/thread_pool.h"

namespace urcl {
namespace runtime {

// Process-wide execution context owning the kernel thread pool. The default
// thread count is URCL_NUM_THREADS if set, else std::thread's hardware
// concurrency; override programmatically with SetNumThreads or per-binary
// with the shared `--threads` flag (see common/flags.h).
class ExecutionContext {
 public:
  static ExecutionContext& Get();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  int num_threads();

  // Replaces the pool. Must not be called concurrently with running kernels;
  // values < 1 are clamped to 1.
  void SetNumThreads(int num_threads);

  // Runs body(chunk_begin, chunk_end) over [begin, end) in chunks of `grain`
  // indices (grain < 1 is treated as 1). Blocks until all chunks finish; the
  // first exception thrown by the body is rethrown here. Nested calls (from
  // inside a body) execute serially on the calling thread with the same
  // chunk boundaries.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

 private:
  ExecutionContext();

  // mu_ serializes pool replacement against top-level regions; holding it for
  // the whole Run keeps SetNumThreads from joining a pool mid-region.
  Mutex mu_;
  std::unique_ptr<ThreadPool> pool_ URCL_GUARDED_BY(mu_);
};

// Convenience wrappers over ExecutionContext::Get().
void SetNumThreads(int num_threads);
int GetNumThreads();
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

// True while the calling thread is executing a ParallelFor chunk (used by
// ParallelFor itself to serialize nested regions; exposed for tests).
bool InParallelRegion();

}  // namespace runtime
}  // namespace urcl

#endif  // URCL_RUNTIME_PARALLEL_H_
