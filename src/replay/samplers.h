// Replay sampling strategies: uniform random (the common baseline, used by
// the w/o_RMIR ablation) and the paper's ranking-based maximally interfered
// retrieval (RMIR, Sec. IV-B1).
#ifndef URCL_REPLAY_SAMPLERS_H_
#define URCL_REPLAY_SAMPLERS_H_

#include <vector>

#include "common/rng.h"
#include "replay/replay_buffer.h"

namespace urcl {
namespace replay {

// Uniformly samples min(count, size) distinct buffer indices.
class RandomSampler {
 public:
  std::vector<int64_t> Sample(const ReplayBuffer& buffer, int64_t count, Rng& rng) const;
};

struct RmirConfig {
  // |N| in the paper: size of the maximally-interfered candidate pool.
  int64_t candidate_pool = 32;
  // Virtual gradient-step learning rate used when scoring interference.
  float virtual_lr = 0.01f;
};

// RMIR selection, decomposed so the model-dependent part (interference
// scores = loss increase under a virtual parameter update) is computed by
// the trainer and passed in:
//   1. take the top-|N| buffer items by interference,
//   2. re-rank those by Pearson correlation with the current observations,
//   3. return the top-|S| most similar.
class RmirSampler {
 public:
  explicit RmirSampler(const RmirConfig& config);

  // `interference[i]` scores buffer item i; `current_inputs` is the batch of
  // current observations [B, M, N, C] (its mean over B is the reference).
  std::vector<int64_t> Select(const ReplayBuffer& buffer, const Tensor& current_inputs,
                              const std::vector<float>& interference,
                              int64_t sample_count) const;

  // Pearson correlation coefficient between two equal-sized tensors
  // (flattened). Returns 0 for degenerate (constant) inputs.
  static float PearsonCorrelation(const Tensor& a, const Tensor& b);

  const RmirConfig& config() const { return config_; }

 private:
  RmirConfig config_;
};

}  // namespace replay
}  // namespace urcl

#endif  // URCL_REPLAY_SAMPLERS_H_
