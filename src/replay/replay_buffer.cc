#include "replay/replay_buffer.h"

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace replay {

ReplayBuffer::ReplayBuffer(int64_t capacity, BufferPolicy policy, uint64_t seed)
    : capacity_(capacity), policy_(policy), rng_(seed) {
  URCL_CHECK_GT(capacity, 0);
}

void ReplayBuffer::Add(ReplayItem item) {
  URCL_CHECK_EQ(item.inputs.rank(), 3) << "replay inputs must be [M, N, C]";
  URCL_CHECK_EQ(item.targets.rank(), 3) << "replay targets must be [N_out, N, 1]";
  if (!items_.empty()) {
    URCL_CHECK(item.inputs.shape() == items_.front().inputs.shape())
        << "replay buffer items must share one shape";
    URCL_CHECK(item.targets.shape() == items_.front().targets.shape());
  }
  ++inserted_;
  if (size() < capacity_) {
    items_.push_back(std::move(item));
    return;
  }
  if (policy_ == BufferPolicy::kFifo) {
    items_.pop_front();
    ++evictions_;
    items_.push_back(std::move(item));
    return;
  }
  // Reservoir: keep each ever-inserted item with probability capacity/seen.
  const int64_t slot = rng_.UniformInt(0, inserted_ - 1);
  if (slot < capacity_) {
    items_[static_cast<size_t>(slot)] = std::move(item);
    ++evictions_;
  }
}

void ReplayBuffer::Clear() {
  items_.clear();
  evictions_ = 0;
  inserted_ = 0;
}

const ReplayItem& ReplayBuffer::Get(int64_t index) const {
  URCL_CHECK(index >= 0 && index < size()) << "replay index " << index << " out of range";
  return items_[static_cast<size_t>(index)];
}

std::pair<Tensor, Tensor> ReplayBuffer::MakeBatch(const std::vector<int64_t>& indices) const {
  URCL_CHECK(!indices.empty());
  std::vector<Tensor> xs;
  std::vector<Tensor> ys;
  xs.reserve(indices.size());
  ys.reserve(indices.size());
  for (const int64_t index : indices) {
    const ReplayItem& item = Get(index);
    xs.push_back(item.inputs);
    ys.push_back(item.targets);
  }
  return {ops::Stack(xs, 0), ops::Stack(ys, 0)};
}

}  // namespace replay
}  // namespace urcl
