#include "replay/replay_buffer.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"
#include "tensor/serialize.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace replay {

ReplayBuffer::ReplayBuffer(int64_t capacity, BufferPolicy policy, uint64_t seed)
    : capacity_(capacity), policy_(policy), rng_(seed) {
  URCL_CHECK_GT(capacity, 0);
}

void ReplayBuffer::Add(ReplayItem item) {
  URCL_CHECK_EQ(item.inputs.rank(), 3) << "replay inputs must be [M, N, C]";
  URCL_CHECK_EQ(item.targets.rank(), 3) << "replay targets must be [N_out, N, 1]";
  if (!items_.empty()) {
    URCL_CHECK(item.inputs.shape() == items_.front().inputs.shape())
        << "replay buffer items must share one shape";
    URCL_CHECK(item.targets.shape() == items_.front().targets.shape());
  }
  ++inserted_;
  const int64_t evictions_before = evictions_;
  if (size() < capacity_) {
    items_.push_back(std::move(item));
  } else if (policy_ == BufferPolicy::kFifo) {
    items_.pop_front();
    ++evictions_;
    items_.push_back(std::move(item));
  } else {
    // Reservoir: keep each ever-inserted item with probability capacity/seen.
    const int64_t slot = rng_.UniformInt(0, inserted_ - 1);
    if (slot < capacity_) {
      items_[static_cast<size_t>(slot)] = std::move(item);
      ++evictions_;
    }
  }
  if (obs::MetricsEnabled()) {
    auto& registry = obs::MetricsRegistry::Get();
    registry.GetCounter("urcl.replay.added").Add(1);
    if (evictions_ != evictions_before) registry.GetCounter("urcl.replay.evicted").Add(1);
    registry.GetGauge("urcl.replay.size").Set(static_cast<double>(size()));
  }
}

void ReplayBuffer::Clear() {
  items_.clear();
  evictions_ = 0;
  inserted_ = 0;
}

const ReplayItem& ReplayBuffer::Get(int64_t index) const {
  URCL_CHECK(index >= 0 && index < size()) << "replay index " << index << " out of range";
  return items_[static_cast<size_t>(index)];
}

std::pair<Tensor, Tensor> ReplayBuffer::MakeBatch(const std::vector<int64_t>& indices) const {
  URCL_CHECK(!indices.empty());
  std::vector<Tensor> xs;
  std::vector<Tensor> ys;
  xs.reserve(indices.size());
  ys.reserve(indices.size());
  for (const int64_t index : indices) {
    const ReplayItem& item = Get(index);
    xs.push_back(item.inputs);
    ys.push_back(item.targets);
  }
  return {ops::Stack(xs, 0), ops::Stack(ys, 0)};
}

void ReplayBuffer::ExportComposition(int64_t current_stage) const {
  if (!obs::MetricsEnabled()) return;
  std::map<int64_t, int64_t> per_stage;
  for (const ReplayItem& item : items_) ++per_stage[item.stage];
  auto& registry = obs::MetricsRegistry::Get();
  // Write a gauge for every stage up to the current one (not just the stages
  // present) so a stage whose items were fully evicted reads 0, not its last
  // non-zero value.
  const int64_t top = std::max<int64_t>(
      current_stage, per_stage.empty() ? 0 : per_stage.rbegin()->first);
  for (int64_t stage = 0; stage <= top; ++stage) {
    const auto it = per_stage.find(stage);
    const int64_t count = it == per_stage.end() ? 0 : it->second;
    registry
        .GetGauge(obs::LabeledName("urcl.replay.stage_items",
                                   {{"stage", std::to_string(stage)}}))
        .Set(static_cast<double>(count));
  }
  obs::Histogram& age = registry.GetHistogram(
      "urcl.replay.item_age_stages", {0.5, 1.5, 2.5, 3.5, 4.5, 6.5, 8.5, 12.5, 16.5});
  for (const ReplayItem& item : items_) {
    age.Observe(static_cast<double>(current_stage - item.stage));
  }
}

namespace {
// v1 lacked the per-item stage tag; v2 appends it after time_slot. v1 states
// are still accepted (stage = 0) so old checkpoints restore.
constexpr uint32_t kBufferStateVersion = 2;
constexpr uint32_t kBufferStateVersionNoStage = 1;
}  // namespace

void ReplayBuffer::Serialize(std::ostream& out) const {
  io::WritePod(out, kBufferStateVersion);
  io::WritePod(out, capacity_);
  io::WritePod(out, static_cast<uint32_t>(policy_));
  io::WritePod(out, evictions_);
  io::WritePod(out, inserted_);
  const std::string rng_state = rng_.SaveState();
  io::WritePod(out, static_cast<uint64_t>(rng_state.size()));
  out.write(rng_state.data(), static_cast<std::streamsize>(rng_state.size()));
  io::WritePod(out, static_cast<uint64_t>(items_.size()));
  for (const ReplayItem& item : items_) {
    SaveTensor(item.inputs, out);
    SaveTensor(item.targets, out);
    io::WritePod(out, item.time_slot);
    io::WritePod(out, item.stage);
  }
}

Status ReplayBuffer::Deserialize(std::istream& in) {
  const uint32_t version = io::ReadPod<uint32_t>(in);
  if (version != kBufferStateVersion && version != kBufferStateVersionNoStage) {
    return Status::Error("replay buffer state version " + std::to_string(version) +
                         " unsupported (expected " + std::to_string(kBufferStateVersion) + ")");
  }
  const int64_t capacity = io::ReadPod<int64_t>(in);
  const uint32_t policy = io::ReadPod<uint32_t>(in);
  if (capacity != capacity_) {
    return Status::Error("replay buffer state capacity " + std::to_string(capacity) +
                         " does not match configured capacity " + std::to_string(capacity_));
  }
  if (policy != static_cast<uint32_t>(policy_)) {
    return Status::Error("replay buffer state policy " + std::to_string(policy) +
                         " does not match configured policy " +
                         std::to_string(static_cast<uint32_t>(policy_)));
  }
  const int64_t evictions = io::ReadPod<int64_t>(in);
  const int64_t inserted = io::ReadPod<int64_t>(in);
  if (evictions < 0 || inserted < 0) {
    return Status::Error("replay buffer state has negative counters");
  }
  const uint64_t rng_len = io::ReadPod<uint64_t>(in);
  // mt19937_64 text state is ~7.5 KB; anything much larger is corruption.
  if (rng_len == 0 || rng_len > (1u << 20)) {
    return Status::Error("replay buffer RNG state has implausible length " +
                         std::to_string(rng_len));
  }
  std::string rng_state(rng_len, '\0');
  in.read(rng_state.data(), static_cast<std::streamsize>(rng_len));
  if (!in.good()) return Status::Error("replay buffer RNG state truncated");
  const uint64_t count = io::ReadPod<uint64_t>(in);
  if (count > static_cast<uint64_t>(capacity_)) {
    return Status::Error("replay buffer state holds " + std::to_string(count) +
                         " items, above capacity " + std::to_string(capacity_));
  }
  std::deque<ReplayItem> items;
  for (uint64_t i = 0; i < count; ++i) {
    ReplayItem item;
    item.inputs = LoadTensor(in);
    item.targets = LoadTensor(in);
    item.time_slot = io::ReadPod<int64_t>(in);
    if (version >= kBufferStateVersion) item.stage = io::ReadPod<int64_t>(in);
    if (item.inputs.rank() != 3 || item.targets.rank() != 3) {
      return Status::Error("replay buffer state item " + std::to_string(i) +
                           " has non rank-3 tensors");
    }
    items.push_back(std::move(item));
  }
  Rng restored(0);
  if (!restored.LoadState(rng_state)) {
    return Status::Error("replay buffer RNG state failed to parse");
  }
  rng_ = std::move(restored);
  items_ = std::move(items);
  evictions_ = evictions;
  inserted_ = inserted;
  return Status::Ok();
}

}  // namespace replay
}  // namespace urcl
