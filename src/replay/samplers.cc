#include "replay/samplers.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace replay {

std::vector<int64_t> RandomSampler::Sample(const ReplayBuffer& buffer, int64_t count,
                                           Rng& rng) const {
  URCL_CHECK_GE(count, 0);
  const int64_t k = std::min(count, buffer.size());
  return rng.SampleWithoutReplacement(buffer.size(), k);
}

RmirSampler::RmirSampler(const RmirConfig& config) : config_(config) {
  URCL_CHECK_GT(config.candidate_pool, 0);
  URCL_CHECK_GT(config.virtual_lr, 0.0f);
}

float RmirSampler::PearsonCorrelation(const Tensor& a, const Tensor& b) {
  URCL_CHECK_EQ(a.NumElements(), b.NumElements())
      << "Pearson correlation requires equal sizes";
  const int64_t n = a.NumElements();
  URCL_CHECK_GT(n, 1);
  const float* pa = a.data();
  const float* pb = b.data();
  double sum_a = 0.0, sum_b = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum_a += pa[i];
    sum_b += pb[i];
  }
  const double mean_a = sum_a / n;
  const double mean_b = sum_b / n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double da = pa[i] - mean_a;
    const double db = pb[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a < 1e-12 || var_b < 1e-12) return 0.0f;
  return static_cast<float>(cov / std::sqrt(var_a * var_b));
}

std::vector<int64_t> RmirSampler::Select(const ReplayBuffer& buffer,
                                         const Tensor& current_inputs,
                                         const std::vector<float>& interference,
                                         int64_t sample_count) const {
  URCL_CHECK_EQ(static_cast<int64_t>(interference.size()), buffer.size())
      << "one interference score per buffer item required";
  URCL_CHECK_GE(sample_count, 0);
  if (buffer.empty() || sample_count == 0) return {};
  URCL_CHECK_EQ(current_inputs.rank(), 4) << "current inputs must be [B, M, N, C]";

  // Step 1: top-|N| most interfered (largest loss increase).
  std::vector<int64_t> order(static_cast<size_t>(buffer.size()));
  std::iota(order.begin(), order.end(), 0);
  const int64_t pool = std::min(config_.candidate_pool, buffer.size());
  std::partial_sort(order.begin(), order.begin() + pool, order.end(),
                    [&](int64_t lhs, int64_t rhs) {
                      return interference[static_cast<size_t>(lhs)] >
                             interference[static_cast<size_t>(rhs)];
                    });
  order.resize(static_cast<size_t>(pool));

  // Step 2: re-rank candidates by Pearson similarity with the current batch
  // mean (temporal-correlation heuristic of Sec. IV-B1).
  const Tensor reference = ops::Mean(current_inputs, {0});
  std::vector<std::pair<float, int64_t>> scored;
  scored.reserve(order.size());
  for (const int64_t index : order) {
    const float corr = PearsonCorrelation(buffer.Get(index).inputs, reference);
    scored.emplace_back(corr, index);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& lhs, const auto& rhs) { return lhs.first > rhs.first; });

  // Step 3: top-|S| most similar.
  const int64_t take = std::min<int64_t>(sample_count, static_cast<int64_t>(scored.size()));
  std::vector<int64_t> selected;
  selected.reserve(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) selected.push_back(scored[static_cast<size_t>(i)].second);
  return selected;
}

}  // namespace replay
}  // namespace urcl
