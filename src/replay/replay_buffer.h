// The explicit replay memory B (Sec. IV-B): a bounded FIFO queue of
// previously trained observations (stored pre-mixup, per the paper).
#ifndef URCL_REPLAY_REPLAY_BUFFER_H_
#define URCL_REPLAY_REPLAY_BUFFER_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace urcl {
namespace replay {

// One stored observation-groundtruth pair.
struct ReplayItem {
  Tensor inputs;   // [M, N, C]
  Tensor targets;  // [N_out, N, 1]
  int64_t time_slot = 0;  // when it was observed (for diagnostics)
  // Training stage the item was inserted during. Drives the buffer
  // composition telemetry (which stages the memory still represents); 0 for
  // items restored from a pre-stage-tagging (v1) checkpoint.
  int64_t stage = 0;
};

enum class BufferPolicy {
  // The paper's literal description ("we organize the buffer as a queue"):
  // oldest items are evicted on overflow. Note that a FIFO of size K only
  // spans the most recent K training samples, so by the time a new stage is
  // being trained it contains almost no genuinely historical data.
  kFifo,
  // Reservoir sampling (used by the MIR line of replay methods the paper
  // builds on): the buffer holds a uniform subsample of everything ever
  // inserted, so earlier stages stay represented. Default, because it is
  // what makes the replay mechanism preserve historical knowledge.
  kReservoir,
};

// Bounded replay memory, 256 slots by default (Sec. V-A4).
class ReplayBuffer {
 public:
  explicit ReplayBuffer(int64_t capacity = 256,
                        BufferPolicy policy = BufferPolicy::kReservoir,
                        uint64_t seed = 0x5eed);

  void Add(ReplayItem item);
  void Clear();

  int64_t size() const { return static_cast<int64_t>(items_.size()); }
  int64_t capacity() const { return capacity_; }
  bool empty() const { return items_.empty(); }

  const ReplayItem& Get(int64_t index) const;

  // Stacks the selected items into ([K, M, N, C], [K, N_out, N, 1]).
  std::pair<Tensor, Tensor> MakeBatch(const std::vector<int64_t>& indices) const;

  // Exports the buffer's composition to the metrics registry: per-stage item
  // counts as `urcl.replay.stage_items{stage="k"}` gauges and the
  // age-in-stages distribution (current_stage - item.stage) as the
  // `urcl.replay.item_age_stages` histogram. Call once per stage boundary —
  // gauges for stages that dropped out of the buffer are zeroed.
  void ExportComposition(int64_t current_stage) const;

  // Total evictions so far (diagnostics).
  int64_t evictions() const { return evictions_; }

  // Total items ever inserted (diagnostics).
  int64_t inserted() const { return inserted_; }

  BufferPolicy policy() const { return policy_; }

  // Checkpointing: writes the complete buffer state — items, eviction/insert
  // counters and the reservoir RNG position — so a restored buffer continues
  // the eviction stream bit-for-bit.
  void Serialize(std::ostream& out) const;
  // Restores state written by Serialize into a buffer constructed with the
  // same capacity/policy; returns an error on any mismatch or implausible
  // field instead of clobbering the live buffer.
  Status Deserialize(std::istream& in);

 private:
  int64_t capacity_;
  BufferPolicy policy_;
  Rng rng_;
  std::deque<ReplayItem> items_;
  int64_t evictions_ = 0;
  int64_t inserted_ = 0;
};

}  // namespace replay
}  // namespace urcl

#endif  // URCL_REPLAY_REPLAY_BUFFER_H_
