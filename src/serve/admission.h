// Snapshot admission: the validation gate between the trainer publishing a
// weight snapshot and that snapshot going live in the ModelHub (DESIGN.md
// §11). A bad publish must never swap into production; it is quarantined
// (counted + logged by the caller) and the incumbent version stays live.
//
// Gates, in order (each produces a distinct diagnostic):
//   1. integrity  — the serialized container round-trips through
//                   checkpoint::Container::Parse: magic, section structure,
//                   per-section CRC32 and the whole-body CRC (catches
//                   bit-flips, truncation and wrong section counts);
//   2. parse      — ParseModelSnapshot: serve_meta schema version, section
//                   presence and architecture (tensor-count) agreement;
//   3. weight scan — every parameter tensor is finite;
//   4. canary     — one inference on a pinned probe window must produce an
//                   all-finite output within |y| <= canary_abs_bound
//                   (normalized space), so weights that are finite but
//                   explosive are caught before live traffic sees them.
#ifndef URCL_SERVE_ADMISSION_H_
#define URCL_SERVE_ADMISSION_H_

#include <memory>
#include <string>
#include <vector>

#include "checkpoint/container.h"
#include "common/status.h"
#include "core/urcl.h"
#include "serve/snapshot.h"
#include "tensor/tensor.h"

namespace urcl {
namespace serve {

// Which gates run and the canary bounds. Every gate defaults on; tests and
// deliberately permissive deployments can switch individual gates off.
struct AdmissionConfig {
  // Serialize + reparse the container so the checkpoint CRC/section checks
  // run even for in-memory publishes (the honest check for snapshots that
  // cross a file or network boundary).
  bool verify_integrity = true;

  // Reject snapshots with any non-finite parameter.
  bool scan_weights = true;

  // Reject snapshots whose canary inference is non-finite or out of bounds.
  bool run_canary = true;

  // Canary output bound: |y| above this (in normalized space) fails the
  // canary. Normalized targets live in [0, 1]; the default leaves generous
  // headroom for extrapolation while catching runaway weights.
  float canary_abs_bound = 1e3f;

  // Human-readable message per invalid field; empty when usable.
  std::vector<std::string> Validate() const;
};

// Runs a parsed container through gates 2-4 (integrity is only meaningful on
// bytes; use AdmitSnapshotBytes for gate 1). `probe_window` is the pinned
// canary input [1, M, N, C]; `adjacency` the dense [N, N] graph handed to
// inference. On success *out holds the validated snapshot, ready to publish.
// Failures come back as typed statuses: kDataLoss for corrupt/non-finite
// content, kInvalidArgument/kUnknown for schema and architecture mismatches.
Status AdmitSnapshot(const checkpoint::Container& container, const core::UrclConfig& config,
                     const AdmissionConfig& admission, const Tensor& probe_window,
                     const Tensor& adjacency, std::shared_ptr<const ModelSnapshot>* out);

// Bytes entry point: gate 1 (Container::Parse — magic, CRCs, section
// structure) then AdmitSnapshot on the parsed container.
Status AdmitSnapshotBytes(const std::string& bytes, const core::UrclConfig& config,
                          const AdmissionConfig& admission, const Tensor& probe_window,
                          const Tensor& adjacency, std::shared_ptr<const ModelSnapshot>* out);

}  // namespace serve
}  // namespace urcl

#endif  // URCL_SERVE_ADMISSION_H_
