#include "serve/snapshot.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "tensor/serialize.h"

namespace urcl {
namespace serve {
namespace {

// Must match kServeMetaVersion in core/urcl.cc (the writer side of the
// snapshot contract). Bump both together when the serve_meta layout changes.
constexpr uint32_t kSupportedServeMetaVersion = 1;

}  // namespace

Status ParseModelSnapshot(const checkpoint::Container& container,
                          const core::UrclConfig& config,
                          std::shared_ptr<const ModelSnapshot>* out) {
  if (out == nullptr) return Status::InvalidArgument("ParseModelSnapshot: null output snapshot");
  const std::vector<std::string> config_errors = config.Validate();
  if (!config_errors.empty()) {
    return Status::InvalidArgument("ParseModelSnapshot: invalid model config: " +
                                   config_errors.front());
  }

  const std::string* meta_bytes = container.Find("serve_meta");
  if (meta_bytes == nullptr) {
    return Status::DataLoss("snapshot container is missing the serve_meta section");
  }
  // Fixed layout: uint32 schema + int64 {version, stage, step_count}. Size is
  // checked up front because io::ReadPod aborts on truncation.
  constexpr size_t kMetaSize = sizeof(uint32_t) + 3 * sizeof(int64_t);
  if (meta_bytes->size() != kMetaSize) {
    return Status::DataLoss("serve_meta section has unexpected size " +
                            std::to_string(meta_bytes->size()));
  }
  std::istringstream meta(*meta_bytes);
  const uint32_t schema = io::ReadPod<uint32_t>(meta);
  if (schema != kSupportedServeMetaVersion) {
    return Status::InvalidArgument("unsupported serve_meta schema version " +
                                   std::to_string(schema));
  }
  const int64_t version = io::ReadPod<int64_t>(meta);
  const int64_t stage = io::ReadPod<int64_t>(meta);
  const int64_t step_count = io::ReadPod<int64_t>(meta);

  const std::string* model_bytes = container.Find("model");
  if (model_bytes == nullptr) {
    return Status::DataLoss("snapshot container is missing the model section");
  }

  // Materialize the architecture, then overwrite its weights with the
  // published state. The Rng only seeds the throwaway initial parameters.
  Rng init_rng(config.seed);
  auto model = std::make_unique<core::UrclModel>(config, init_rng);

  std::istringstream model_stream(*model_bytes);
  const uint64_t count = io::ReadPod<uint64_t>(model_stream);
  const size_t expected = model->StateDict().size();
  if (count != expected) {
    return Status::InvalidArgument(
        "snapshot has " + std::to_string(count) + " tensors but the config " +
                         "builds a model with " + std::to_string(expected) +
                         " (architecture mismatch between trainer and server)");
  }
  std::vector<Tensor> state;
  state.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) state.push_back(LoadTensor(model_stream));
  model->LoadStateDict(state);

  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->version = version;
  snapshot->stage = stage;
  snapshot->step_count = step_count;
  snapshot->model = std::move(model);
  *out = std::move(snapshot);
  return Status::Ok();
}

ModelHub::ModelHub(int64_t history_depth) : history_depth_(history_depth) {}

void ModelHub::Publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  MutexLock lock(mu_);
  // Retire-then-install: a reader loading current_ around the store sees
  // either the old or the new version, both fully constructed. The release
  // store pairs with the acquire load in Current() so the snapshot's weights
  // are visible before its pointer is.
  std::shared_ptr<const ModelSnapshot> retired = current_.load(std::memory_order_acquire);
  if (retired != nullptr && history_depth_ > 0) {
    history_.push_back(std::move(retired));
    while (static_cast<int64_t>(history_.size()) > history_depth_) history_.pop_front();
  }
  current_.store(std::move(snapshot), std::memory_order_release);
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const ModelSnapshot> ModelHub::RollBack() {
  MutexLock lock(mu_);
  if (history_.empty()) return nullptr;
  std::shared_ptr<const ModelSnapshot> restored = history_.back();
  history_.pop_back();
  // The bad incumbent is dropped on the floor (in-flight queries holding its
  // shared_ptr finish safely; their outputs are quarantined by the caller).
  current_.store(restored, std::memory_order_release);
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  return restored;
}

std::shared_ptr<const ModelSnapshot> ModelHub::Previous() const {
  MutexLock lock(mu_);
  return history_.empty() ? nullptr : history_.back();
}

int64_t ModelHub::history_size() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(history_.size());
}

}  // namespace serve
}  // namespace urcl
