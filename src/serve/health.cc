#include "serve/health.h"

namespace urcl {
namespace serve {

std::vector<std::string> HealthConfig::Validate() const {
  std::vector<std::string> errors;
  if (error_window < 1) errors.push_back("error_window must be >= 1");
  if (rollback_errors < 1) errors.push_back("rollback_errors must be >= 1");
  if (rollback_errors > error_window) {
    errors.push_back("rollback_errors must fit inside error_window");
  }
  if (staleness_ns < 0) errors.push_back("staleness_ns must be >= 0 (0 = off)");
  if (max_snapshot_age_ns < 0) errors.push_back("max_snapshot_age_ns must be >= 0 (0 = off)");
  if (lame_duck_after < 0) errors.push_back("lame_duck_after must be >= 0 (0 = off)");
  return errors;
}

HealthMonitor::HealthMonitor(const HealthConfig& config) : config_(config) {}

bool HealthMonitor::RecordModelResult(bool ok) {
  const int64_t queries = window_queries_.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t errors = 0;
  if (!ok) errors = window_errors_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ok) consecutive_degraded_.store(0, std::memory_order_relaxed);
  if (queries >= config_.error_window) {
    // Tumble: approximate under contention (several threads may tumble at
    // once), which only makes the window slightly shorter — safe direction.
    window_queries_.store(0, std::memory_order_relaxed);
    window_errors_.store(0, std::memory_order_relaxed);
  }
  return !ok && errors == config_.rollback_errors;
}

void HealthMonitor::OnSwap(int64_t now_ns) {
  last_swap_ns_.store(now_ns, std::memory_order_relaxed);
  window_queries_.store(0, std::memory_order_relaxed);
  window_errors_.store(0, std::memory_order_relaxed);
  model_unusable_.store(false, std::memory_order_relaxed);
  consecutive_degraded_.store(0, std::memory_order_relaxed);
}

void HealthMonitor::NoteDegradedServed() {
  const int64_t run = consecutive_degraded_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.lame_duck_after > 0 && run >= config_.lame_duck_after) {
    lame_duck_.store(true, std::memory_order_relaxed);
  }
}

bool HealthMonitor::WindowStale(int64_t now_ns) const {
  if (config_.staleness_ns <= 0) return false;
  const int64_t last = last_tick_ns_.load(std::memory_order_relaxed);
  return last >= 0 && now_ns - last > config_.staleness_ns;
}

HealthState HealthMonitor::Evaluate(int64_t now_ns, bool has_snapshot) const {
  if (lame_duck_.load(std::memory_order_relaxed)) return HealthState::kLameDuck;
  if (model_unusable_.load(std::memory_order_relaxed)) return HealthState::kDegraded;
  if (WindowStale(now_ns)) return HealthState::kDegraded;
  if (config_.max_snapshot_age_ns > 0 && has_snapshot) {
    const int64_t swapped = last_swap_ns_.load(std::memory_order_relaxed);
    if (swapped >= 0 && now_ns - swapped > config_.max_snapshot_age_ns) {
      return HealthState::kDegraded;
    }
  }
  return HealthState::kHealthy;
}

}  // namespace serve
}  // namespace urcl
