// Serving health state machine (DESIGN.md §11). The ForecastService owns one
// HealthMonitor and feeds it three signal families:
//
//   - model errors: non-finite forecasts / executor failures on the live
//     version, counted over a tumbling query window — a spike triggers
//     automatic rollback (or, when no older version exists, DEGRADED);
//   - ingestion staleness: a watchdog on the rolling window — no tick for
//     `staleness_ns` flags windows stale and degrades the service;
//   - snapshot age: a live version older than `max_snapshot_age_ns` (the
//     trainer stalled publishing) degrades the service.
//
// States: HEALTHY (answer from the model) → DEGRADED (answer from the
// fallback HistoricalAverage baseline, stamped degraded=true) → LAME_DUCK
// (terminal drain: every query is shed with kUnavailable). DEGRADED is
// recoverable — a freshly admitted snapshot, a successful rollback or a
// resumed tick stream returns the service to HEALTHY; LAME_DUCK is not.
#ifndef URCL_SERVE_HEALTH_H_
#define URCL_SERVE_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace urcl {
namespace serve {

enum class HealthState {
  kHealthy = 0,
  kDegraded = 1,
  kLameDuck = 2,
};

inline const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "HEALTHY";
    case HealthState::kDegraded: return "DEGRADED";
    case HealthState::kLameDuck: return "LAME_DUCK";
  }
  return "UNKNOWN";
}

// Thresholds of the health state machine. All durations are monotonic-clock
// nanoseconds; 0 disables the corresponding watchdog.
struct HealthConfig {
  // Tumbling window length (in model-path queries) over which model errors
  // are counted. The window resets on every swap/rollback so a fresh version
  // starts with a clean slate.
  int64_t error_window = 64;

  // Model errors (non-finite forecasts) within one window that trigger an
  // automatic rollback to the previous live version.
  int64_t rollback_errors = 3;

  // No tick ingested for this long => windows are stale and the service is
  // DEGRADED until the stream resumes. 0 = watchdog off.
  int64_t staleness_ns = 0;

  // Live snapshot older than this => the trainer stalled; DEGRADED until a
  // fresh version is admitted. 0 = no age limit.
  int64_t max_snapshot_age_ns = 0;

  // Consecutive degraded-served queries after which the service gives up and
  // enters LAME_DUCK (terminal). 0 = never automatically.
  int64_t lame_duck_after = 0;

  // Human-readable message per invalid field; empty when usable.
  std::vector<std::string> Validate() const;
};

// Tracks the signals above. All methods are thread-safe; counters are
// relaxed atomics (the window accounting is approximate under contention by
// design — a rollback trigger a few queries early or late is fine).
class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthConfig& config);

  // Records the outcome of one model-path query. Returns true when the error
  // count within the current window has just crossed the rollback threshold
  // (the caller should attempt a rollback; dedup is the caller's problem).
  bool RecordModelResult(bool ok);

  // A new version went live (admitted publish or rollback): clean slate.
  void OnSwap(int64_t now_ns);

  // A tick reached the rolling window.
  void OnTick(int64_t now_ns) { last_tick_ns_.store(now_ns, std::memory_order_relaxed); }

  // No older version was available to roll back to: the model path is
  // unusable until the next admitted snapshot.
  void MarkModelUnusable() { model_unusable_.store(true, std::memory_order_relaxed); }
  bool model_unusable() const { return model_unusable_.load(std::memory_order_relaxed); }

  // One query was served from the fallback baseline; drives the
  // lame_duck_after counter. A model-path success resets it.
  void NoteDegradedServed();

  // Terminal drain: every subsequent Evaluate returns kLameDuck.
  void EnterLameDuck() { lame_duck_.store(true, std::memory_order_relaxed); }

  // True when the rolling window has seen a tick but none within the
  // staleness threshold.
  bool WindowStale(int64_t now_ns) const;

  // Current state from the recorded signals. `has_snapshot` gates the
  // snapshot-age watchdog (a cold service with no version yet is not
  // "degraded", it is still starting up and fails closed).
  HealthState Evaluate(int64_t now_ns, bool has_snapshot) const;

  int64_t window_errors() const { return window_errors_.load(std::memory_order_relaxed); }

 private:
  HealthConfig config_;
  std::atomic<int64_t> window_queries_{0};
  std::atomic<int64_t> window_errors_{0};
  std::atomic<int64_t> last_tick_ns_{-1};   // -1 = no tick yet
  std::atomic<int64_t> last_swap_ns_{-1};   // -1 = no version yet
  std::atomic<int64_t> consecutive_degraded_{0};
  std::atomic<bool> model_unusable_{false};
  std::atomic<bool> lame_duck_{false};
};

}  // namespace serve
}  // namespace urcl

#endif  // URCL_SERVE_HEALTH_H_
