// Immutable model versions for the streaming inference service.
//
// The trainer publishes weight snapshots as checkpoint-format Containers
// (UrclTrainer::SetSnapshotSink); ParseModelSnapshot materializes each one
// into a frozen UrclModel plus identifying metadata, and ModelHub hands the
// newest version to any number of concurrent reader threads via an atomic
// shared_ptr swap — readers never take a mutex and never observe a
// half-published model. The hub also keeps an N-deep ring of previously-live
// versions so a post-swap failure spike can roll the service back to the
// last-good snapshot without waiting for the trainer. See DESIGN.md
// "Serving model" and "Serving failure model".
#ifndef URCL_SERVE_SNAPSHOT_H_
#define URCL_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>

#include "checkpoint/container.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/urcl.h"

namespace urcl {
namespace serve {

// One published model version. Immutable after construction, so any number
// of reader threads can run ForwardInference on `model` concurrently without
// synchronization; the shared_ptr holding the snapshot keeps the weights
// alive for in-flight queries across a hot-swap.
struct ModelSnapshot {
  int64_t version = 0;     // monotonically increasing publish count (1-based)
  int64_t stage = -1;      // training stage the weights were captured in
  int64_t step_count = 0;  // optimizer steps taken when the snapshot was cut
  std::unique_ptr<const core::UrclModel> model;
};

// Parses a trainer-published container (sections "model" + "serve_meta", as
// written by UrclTrainer::PublishSnapshot) into a fresh immutable snapshot.
// `config` must describe the same architecture the trainer was built with;
// mismatched tensor counts, unknown serve_meta schema versions and missing
// sections come back as an error Status (the serving loop quarantines the
// snapshot and keeps the previous version live).
Status ParseModelSnapshot(const checkpoint::Container& container,
                          const core::UrclConfig& config,
                          std::shared_ptr<const ModelSnapshot>* out);

// Model-version exchange between one publisher (the training thread) and many
// reader threads, with rollback. Publish() retires the current snapshot into
// a bounded history ring and installs the new one; RollBack() reinstates the
// most recently retired version (dropping the bad incumbent). Current() is a
// single atomic shared_ptr load, so readers are never blocked by a publish or
// a rollback and an in-flight query finishes on whichever version it
// acquired.
class ModelHub {
 public:
  // `history_depth` previously-live versions are retained for rollback
  // (0 = no history: RollBack always fails).
  explicit ModelHub(int64_t history_depth = 4);

  // Installs `snapshot` as the version served to all subsequent Current()
  // calls and retires the incumbent into the history ring. Thread-safe
  // against RollBack and other Publish calls (readers stay lock-free).
  void Publish(std::shared_ptr<const ModelSnapshot> snapshot);

  // Drops the current version and reinstates the most recently retired one
  // (which leaves the history ring — a version is never rolled back to
  // twice without an intervening publish). Returns the reinstated snapshot,
  // or nullptr when the history is empty (the caller must degrade instead).
  // The dropped incumbent is NOT pushed into history: it is bad by
  // definition.
  std::shared_ptr<const ModelSnapshot> RollBack();

  // Newest published snapshot; nullptr before the first Publish.
  std::shared_ptr<const ModelSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  // The most recently retired version (nullptr when the history is empty).
  // Kept alive so tests and diagnostics can compare versions across a swap
  // without racing the publisher.
  std::shared_ptr<const ModelSnapshot> Previous() const;

  // Number of Publish calls / successful RollBack calls observed.
  int64_t swap_count() const { return swaps_.load(std::memory_order_relaxed); }
  int64_t rollback_count() const { return rollbacks_.load(std::memory_order_relaxed); }

  // Previously-live versions currently available to roll back to.
  int64_t history_size() const;

 private:
  const int64_t history_depth_;
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_;
  std::atomic<int64_t> swaps_{0};
  std::atomic<int64_t> rollbacks_{0};

  // Retired versions, oldest first, newest at the back; bounded to
  // history_depth_. Guarded by mu_ (publisher/rollback/diagnostic paths only
  // — the query hot path never touches it).
  mutable Mutex mu_;
  std::deque<std::shared_ptr<const ModelSnapshot>> history_ URCL_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace urcl

#endif  // URCL_SERVE_SNAPSHOT_H_
