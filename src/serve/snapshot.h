// Immutable model versions for the streaming inference service.
//
// The trainer publishes weight snapshots as checkpoint-format Containers
// (UrclTrainer::SetSnapshotSink); ParseModelSnapshot materializes each one
// into a frozen UrclModel plus identifying metadata, and ModelHub hands the
// newest version to any number of concurrent reader threads via an atomic
// shared_ptr swap — readers never take a mutex and never observe a
// half-published model. See DESIGN.md "Serving model".
#ifndef URCL_SERVE_SNAPSHOT_H_
#define URCL_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "checkpoint/container.h"
#include "common/status.h"
#include "core/urcl.h"

namespace urcl {
namespace serve {

// One published model version. Immutable after construction, so any number
// of reader threads can run ForwardInference on `model` concurrently without
// synchronization; the shared_ptr holding the snapshot keeps the weights
// alive for in-flight queries across a hot-swap.
struct ModelSnapshot {
  int64_t version = 0;     // monotonically increasing publish count (1-based)
  int64_t stage = -1;      // training stage the weights were captured in
  int64_t step_count = 0;  // optimizer steps taken when the snapshot was cut
  std::unique_ptr<const core::UrclModel> model;
};

// Parses a trainer-published container (sections "model" + "serve_meta", as
// written by UrclTrainer::PublishSnapshot) into a fresh immutable snapshot.
// `config` must describe the same architecture the trainer was built with;
// mismatched tensor counts, unknown serve_meta schema versions and missing
// sections come back as an error Status (the serving loop drops the snapshot
// and keeps the previous version live).
Status ParseModelSnapshot(const checkpoint::Container& container,
                          const core::UrclConfig& config,
                          std::shared_ptr<const ModelSnapshot>* out);

// Double-buffered model-version exchange between one publisher (the training
// thread) and many reader threads. Publish() retires the current snapshot
// into the previous slot and installs the new one; Current() is a single
// atomic shared_ptr load, so readers are never blocked by a publish and an
// in-flight query finishes on whichever version it acquired.
class ModelHub {
 public:
  // Installs `snapshot` as the version served to all subsequent Current()
  // calls. Single-publisher: only one thread may call Publish at a time
  // (readers may call Current()/Previous() concurrently with it).
  void Publish(std::shared_ptr<const ModelSnapshot> snapshot);

  // Newest published snapshot; nullptr before the first Publish.
  std::shared_ptr<const ModelSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  // The snapshot retired by the most recent Publish (nullptr until the
  // second publish). Kept alive so tests and diagnostics can compare
  // versions across a swap without racing the publisher.
  std::shared_ptr<const ModelSnapshot> Previous() const {
    return previous_.load(std::memory_order_acquire);
  }

  // Number of Publish calls observed.
  int64_t swap_count() const { return swaps_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_;
  std::atomic<std::shared_ptr<const ModelSnapshot>> previous_;
  std::atomic<int64_t> swaps_{0};
};

}  // namespace serve
}  // namespace urcl

#endif  // URCL_SERVE_SNAPSHOT_H_
