#include "serve/service.h"

#include <mutex>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace urcl {
namespace serve {
namespace {

// Decrements the in-flight admission counter when a query leaves the
// service, on every return path.
class InFlightGuard {
 public:
  explicit InFlightGuard(std::atomic<int64_t>& counter) : counter_(counter) {}
  ~InFlightGuard() { counter_.fetch_sub(1, std::memory_order_relaxed); }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  std::atomic<int64_t>& counter_;
};

}  // namespace

std::vector<std::string> ServiceConfig::Validate() const {
  std::vector<std::string> errors;
  for (const std::string& error : model.Validate()) errors.push_back("model: " + error);
  if (window_steps < 0) errors.push_back("window_steps must be >= 0 (0 = model input window)");
  if (window_steps > 0 && window_steps != model.encoder.input_steps) {
    errors.push_back("window_steps (" + std::to_string(window_steps) +
                     ") must match the model input window (" +
                     std::to_string(model.encoder.input_steps) +
                     ") so rolling-window queries fit the encoder");
  }
  if (max_batch < 1) errors.push_back("max_batch must be >= 1");
  if (queue_depth < 1) errors.push_back("queue_depth must be >= 1");
  if (snapshot_poll_every < 1) {
    errors.push_back("snapshot_poll_every must be >= 1 (1 = poll on every query)");
  }
  return errors;
}

ForecastService::ForecastService(const ServiceConfig& config,
                                 const graph::SensorNetwork& network,
                                 const data::MinMaxNormalizer& normalizer)
    : config_(config),
      window_steps_(config.EffectiveWindowSteps()),
      num_nodes_(network.num_nodes()),
      num_channels_(normalizer.num_channels()),
      adjacency_(network.AdjacencyMatrix()) {
  const std::vector<std::string> errors = config.Validate();
  URCL_CHECK(errors.empty()) << "invalid ServiceConfig: " << errors.front();
  URCL_CHECK_EQ(num_nodes_, config.model.encoder.num_nodes)
      << "sensor network does not match the model's node count";
  URCL_CHECK_EQ(num_channels_, config.model.encoder.in_channels)
      << "normalizer channel count does not match the model's input channels";
  channel_min_.resize(static_cast<size_t>(num_channels_));
  channel_max_.resize(static_cast<size_t>(num_channels_));
  for (int64_t c = 0; c < num_channels_; ++c) {
    channel_min_[static_cast<size_t>(c)] = normalizer.min(c);
    channel_max_[static_cast<size_t>(c)] = normalizer.max(c);
  }
  ring_.assign(static_cast<size_t>(window_steps_ * num_nodes_ * num_channels_), 0.0f);
}

core::UrclTrainer::SnapshotSink ForecastService::SnapshotSink() {
  return [this](const checkpoint::Container& container) {
    URCL_TRACE_SCOPE("serve.ingest_snapshot");
    std::shared_ptr<const ModelSnapshot> snapshot;
    const Status status = ParseModelSnapshot(container, config_.model, &snapshot);
    const bool metrics = obs::MetricsEnabled();
    if (!status.ok()) {
      // Keep the previous version live; a bad publish must not take the
      // service down.
      if (metrics) {
        obs::MetricsRegistry::Get().GetCounter("urcl.serve.snapshot_parse_failures").Add(1);
      }
      return;
    }
    hub_.Publish(std::move(snapshot));
    if (metrics) {
      auto& registry = obs::MetricsRegistry::Get();
      registry.GetCounter("urcl.serve.snapshots").Add(1);
      registry.GetGauge("urcl.serve.model_version")
          .Set(static_cast<double>(hub_.Current()->version));
    }
  };
}

void ForecastService::IngestTick(const Tensor& observations) {
  URCL_TRACE_SCOPE("serve.ingest_tick");
  URCL_CHECK_EQ(observations.rank(), 2) << "tick must be [N, C]";
  URCL_CHECK_EQ(observations.dim(0), num_nodes_);
  URCL_CHECK_EQ(observations.dim(1), num_channels_);
  const float* raw = observations.data();
  const int64_t tick_size = num_nodes_ * num_channels_;
  {
    std::unique_lock<std::shared_mutex> lock(window_mu_);
    float* slot = ring_.data() + next_slot_ * tick_size;
    for (int64_t i = 0; i < tick_size; ++i) {
      // Same expression as MinMaxNormalizer::Transform, so windows assembled
      // here are bitwise-identical to training-time normalized inputs.
      const size_t c = static_cast<size_t>(i % num_channels_);
      slot[i] = (raw[i] - channel_min_[c]) / (channel_max_[c] - channel_min_[c]);
    }
    next_slot_ = (next_slot_ + 1) % window_steps_;
    ++ticks_;
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Get().GetCounter("urcl.serve.ticks").Add(1);
  }
}

bool ForecastService::WindowReady() const {
  std::shared_lock<std::shared_mutex> lock(window_mu_);
  return ticks_ >= window_steps_;
}

int64_t ForecastService::ticks_ingested() const {
  std::shared_lock<std::shared_mutex> lock(window_mu_);
  return ticks_;
}

Tensor ForecastService::CurrentWindow() const {
  Tensor window(Shape{1, window_steps_, num_nodes_, num_channels_});
  float* dst = window.mutable_data();
  const int64_t tick_size = num_nodes_ * num_channels_;
  std::shared_lock<std::shared_mutex> lock(window_mu_);
  URCL_CHECK_GE(ticks_, window_steps_) << "rolling window is still filling";
  // Oldest tick lives in the slot the next write would overwrite.
  for (int64_t t = 0; t < window_steps_; ++t) {
    const int64_t slot = (next_slot_ + t) % window_steps_;
    const float* src = ring_.data() + slot * tick_size;
    float* out = dst + t * tick_size;
    for (int64_t i = 0; i < tick_size; ++i) out[i] = src[i];
  }
  return window;
}

Status ForecastService::Forecast(int64_t horizon, core::PredictResponse* response) const {
  if (!WindowReady()) {
    return Status::Error("rolling window still filling: " + std::to_string(ticks_ingested()) +
                         "/" + std::to_string(window_steps_) + " ticks");
  }
  core::PredictRequest request;
  request.inputs = CurrentWindow();
  request.horizon = horizon;
  return Predict(request, response);
}

std::shared_ptr<const ModelSnapshot> ForecastService::AcquireSnapshot() const {
  if (config_.snapshot_poll_every <= 1) return hub_.Current();
  const int64_t seq = query_seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq % config_.snapshot_poll_every == 0) {
    std::shared_ptr<const ModelSnapshot> fresh = hub_.Current();
    cached_snapshot_.store(fresh, std::memory_order_release);
    return fresh;
  }
  std::shared_ptr<const ModelSnapshot> cached =
      cached_snapshot_.load(std::memory_order_acquire);
  return cached != nullptr ? cached : hub_.Current();
}

Status ForecastService::Predict(const core::PredictRequest& request,
                                core::PredictResponse* response) const {
  URCL_TRACE_SCOPE("serve.predict");
  const bool metrics = obs::MetricsEnabled();
  if (metrics) obs::MetricsRegistry::Get().GetCounter("urcl.serve.queries").Add(1);

  // Admission control: shed load beyond queue_depth instead of queueing
  // without bound (the caller decides whether to retry).
  if (in_flight_.fetch_add(1, std::memory_order_relaxed) >= config_.queue_depth) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (metrics) obs::MetricsRegistry::Get().GetCounter("urcl.serve.rejected").Add(1);
    return Status::Error("service overloaded: queue_depth " +
                         std::to_string(config_.queue_depth) + " queries already in flight");
  }
  InFlightGuard guard(in_flight_);

  if (response == nullptr) return Status::Error("Predict: null response");
  if (request.inputs.rank() != 4) {
    return Status::Error("Predict: inputs must be [B, M, N, C], got rank " +
                         std::to_string(request.inputs.rank()));
  }
  if (request.inputs.dim(0) > config_.max_batch) {
    return Status::Error("Predict: batch " + std::to_string(request.inputs.dim(0)) +
                         " exceeds max_batch " + std::to_string(config_.max_batch));
  }

  const std::shared_ptr<const ModelSnapshot> snapshot = AcquireSnapshot();
  if (snapshot == nullptr) {
    return Status::Error("no model snapshot published yet");
  }

  const Stopwatch stopwatch;
  Status status = core::FinishPrediction(
      request, snapshot->model->ForwardInference(request.inputs, adjacency_), response);
  if (!status.ok()) return status;
  // Stamp the version that actually served the query: across a hot-swap,
  // in-flight queries finish on (and report) the version they acquired.
  response->model_version = snapshot->version;
  response->stage = snapshot->stage;
  served_.fetch_add(1, std::memory_order_relaxed);
  if (metrics) {
    obs::MetricsRegistry::Get()
        .GetHistogram("urcl.serve.latency_ns", obs::ExponentialBuckets(1e3, 4, 12))
        .Observe(static_cast<double>(stopwatch.ElapsedNs()));
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace urcl
