#include "serve/service.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/fault_injector.h"
#include "common/stopwatch.h"
#include "obs/facade.h"

namespace urcl {
namespace serve {
namespace {

// Decrements the in-flight admission counter when a query leaves the
// service, on every return path.
class InFlightGuard {
 public:
  explicit InFlightGuard(std::atomic<int64_t>& counter) : counter_(counter) {}
  ~InFlightGuard() { counter_.fetch_sub(1, std::memory_order_relaxed); }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  std::atomic<int64_t>& counter_;
};

// Cached registry handles (obs/facade.h): the per-query cost of a bump is
// one relaxed flag load + one striped add — no mutex-guarded name lookup on
// the hot path. Leaked with the process like the registry itself.
struct ServeMetrics {
  obs::CounterHandle queries{"urcl.serve.queries"};
  obs::CounterHandle ticks{"urcl.serve.ticks"};
  obs::CounterHandle rejected{"urcl.serve.rejected"};
  obs::CounterHandle deadline_shed{"urcl.serve.deadline_shed"};
  obs::CounterHandle degraded{"urcl.serve.degraded"};
  obs::CounterHandle nonfinite_outputs{"urcl.serve.nonfinite_outputs"};
  obs::CounterHandle rollbacks{"urcl.serve.rollbacks"};
  obs::CounterHandle plan_compiles{"urcl.serve.plan_compiles"};
  obs::CounterHandle snapshots{"urcl.serve.snapshots"};
  obs::CounterHandle snapshots_quarantined{"urcl.serve.snapshots_quarantined"};
  obs::CounterHandle snapshot_parse_failures{"urcl.serve.snapshot_parse_failures"};
  obs::GaugeHandle model_version{"urcl.serve.model_version"};
  obs::GaugeHandle health_state{"urcl.serve.health_state"};
  obs::HistogramHandle latency_ns{"urcl.serve.latency_ns",
                                  obs::ExponentialBuckets(1e3, 4, 12)};
};

ServeMetrics& Metrics() {
  static ServeMetrics* metrics = new ServeMetrics();
  return *metrics;
}

}  // namespace

std::vector<std::string> ServiceConfig::Validate() const {
  std::vector<std::string> errors;
  for (const std::string& error : model.Validate()) errors.push_back("model: " + error);
  if (window_steps < 0) errors.push_back("window_steps must be >= 0 (0 = model input window)");
  if (window_steps > 0 && window_steps != model.encoder.input_steps) {
    errors.push_back("window_steps (" + std::to_string(window_steps) +
                     ") must match the model input window (" +
                     std::to_string(model.encoder.input_steps) +
                     ") so rolling-window queries fit the encoder");
  }
  if (max_batch < 1) errors.push_back("max_batch must be >= 1");
  if (queue_depth < 1) errors.push_back("queue_depth must be >= 1");
  if (snapshot_poll_every < 1) {
    errors.push_back("snapshot_poll_every must be >= 1 (1 = poll on every query)");
  }
  for (const std::string& error : admission.Validate()) errors.push_back("admission: " + error);
  for (const std::string& error : health.Validate()) errors.push_back("health: " + error);
  if (history_depth < 0) errors.push_back("history_depth must be >= 0 (0 = rollback off)");
  if (default_deadline_ns < 0) {
    errors.push_back("default_deadline_ns must be >= 0 (0 = no implicit deadline)");
  }
  return errors;
}

ForecastService::ForecastService(const ServiceConfig& config,
                                 const graph::SensorNetwork& network,
                                 const data::MinMaxNormalizer& normalizer)
    : config_(config),
      window_steps_(config.EffectiveWindowSteps()),
      num_nodes_(network.num_nodes()),
      num_channels_(normalizer.num_channels()),
      adjacency_(network.AdjacencyMatrix()),
      hub_(config.history_depth),
      health_(config.health),
      fallback_(config.model.output_steps, /*target_channel=*/0) {
  const std::vector<std::string> errors = config.Validate();
  URCL_CHECK(errors.empty()) << "invalid ServiceConfig: " << errors.front();
  URCL_CHECK_EQ(num_nodes_, config.model.encoder.num_nodes)
      << "sensor network does not match the model's node count";
  URCL_CHECK_EQ(num_channels_, config.model.encoder.in_channels)
      << "normalizer channel count does not match the model's input channels";
  channel_min_.resize(static_cast<size_t>(num_channels_));
  channel_max_.resize(static_cast<size_t>(num_channels_));
  for (int64_t c = 0; c < num_channels_; ++c) {
    channel_min_[static_cast<size_t>(c)] = normalizer.min(c);
    channel_max_[static_cast<size_t>(c)] = normalizer.max(c);
  }
  ring_.assign(static_cast<size_t>(window_steps_ * num_nodes_ * num_channels_), 0.0f);
}

core::UrclTrainer::SnapshotSink ForecastService::SnapshotSink() {
  return [this](const checkpoint::Container& container) {
    URCL_TRACE_SCOPE("serve.ingest_snapshot");
    // Canary input: the live rolling window when ready, else an all-zeros
    // window (a valid point in normalized space — cold-start canaries still
    // catch runaway weights).
    Tensor probe = WindowReady()
                       ? CurrentWindow()
                       : Tensor(Shape{1, window_steps_, num_nodes_, num_channels_});

    std::shared_ptr<const ModelSnapshot> snapshot;
    Status status = Status::Ok();
    if (config_.admission.verify_integrity) {
      // Serialize + reparse so the checkpoint CRC/section checks run even
      // for in-memory publishes. This is also the chaos harness's corruption
      // point: serve_bitflip faults flip one byte "in transit".
      std::string bytes = container.SerializeToString();
      auto& injector = fault::FaultInjector::Instance();
      if (!bytes.empty() && injector.NextSnapshotBitflipped()) {
        bytes[injector.PickByte(bytes.size())] ^= 0x04;
      }
      status = AdmitSnapshotBytes(bytes, config_.model, config_.admission, probe, adjacency_,
                                  &snapshot);
    } else {
      status = AdmitSnapshot(container, config_.model, config_.admission, probe, adjacency_,
                             &snapshot);
    }

    if (!status.ok()) {
      // Quarantine: count, log, and keep the incumbent version live. A bad
      // publish must never take the service down.
      quarantined_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "[urcl.serve] snapshot quarantined: %s\n",
                   status.ToString().c_str());
      Metrics().snapshots_quarantined.Add();
      Metrics().snapshot_parse_failures.Add();  // legacy alias
      obs::RecordFlightEvent(obs::FlightEventType::kSnapshotQuarantine, /*a=*/-1,
                             /*b=*/0, status.message().c_str());
      return;
    }

    const int64_t version = snapshot->version;
    obs::RecordFlightEvent(obs::FlightEventType::kSnapshotAdmit, version);
    hub_.Publish(std::move(snapshot));
    health_.OnSwap(MonotonicNowNs());
    obs::RecordFlightEvent(obs::FlightEventType::kHotSwap, version);
    Metrics().snapshots.Add();
    Metrics().model_version.Set(static_cast<double>(version));
  };
}

void ForecastService::IngestTick(const Tensor& observations) {
  URCL_TRACE_SCOPE("serve.ingest_tick");
  URCL_CHECK_EQ(observations.rank(), 2) << "tick must be [N, C]";
  URCL_CHECK_EQ(observations.dim(0), num_nodes_);
  URCL_CHECK_EQ(observations.dim(1), num_channels_);

  // Chaos harness: a dropped tick never reaches the ring (and never feeds
  // the staleness watchdog); a duplicated tick is written twice, as a
  // re-delivered message from an at-least-once transport would be.
  auto& injector = fault::FaultInjector::Instance();
  if (injector.NextTickDropped()) return;
  const int64_t writes = injector.NextTickDuplicated() ? 2 : 1;

  const float* raw = observations.data();
  const int64_t tick_size = num_nodes_ * num_channels_;
  {
    WriterMutexLock lock(window_mu_);
    for (int64_t w = 0; w < writes; ++w) {
      float* slot = ring_.data() + next_slot_ * tick_size;
      for (int64_t i = 0; i < tick_size; ++i) {
        // Same expression as MinMaxNormalizer::Transform, so windows assembled
        // here are bitwise-identical to training-time normalized inputs.
        const size_t c = static_cast<size_t>(i % num_channels_);
        slot[i] = (raw[i] - channel_min_[c]) / (channel_max_[c] - channel_min_[c]);
      }
      next_slot_ = (next_slot_ + 1) % window_steps_;
      ++ticks_;
    }
  }
  health_.OnTick(MonotonicNowNs());
  Metrics().ticks.Add();
}

bool ForecastService::WindowReady() const {
  ReaderMutexLock lock(window_mu_);
  return ticks_ >= window_steps_;
}

int64_t ForecastService::ticks_ingested() const {
  ReaderMutexLock lock(window_mu_);
  return ticks_;
}

Tensor ForecastService::CurrentWindow() const {
  Tensor window(Shape{1, window_steps_, num_nodes_, num_channels_});
  float* dst = window.mutable_data();
  const int64_t tick_size = num_nodes_ * num_channels_;
  ReaderMutexLock lock(window_mu_);
  URCL_CHECK_GE(ticks_, window_steps_) << "rolling window is still filling";
  // Oldest tick lives in the slot the next write would overwrite.
  for (int64_t t = 0; t < window_steps_; ++t) {
    const int64_t slot = (next_slot_ + t) % window_steps_;
    const float* src = ring_.data() + slot * tick_size;
    float* out = dst + t * tick_size;
    for (int64_t i = 0; i < tick_size; ++i) out[i] = src[i];
  }
  return window;
}

Status ForecastService::Forecast(int64_t horizon, core::PredictResponse* response) const {
  if (!WindowReady()) {
    return Status::FailedPrecondition(
        "rolling window still filling: " + std::to_string(ticks_ingested()) + "/" +
        std::to_string(window_steps_) + " ticks");
  }
  core::PredictRequest request;
  request.inputs = CurrentWindow();
  request.horizon = horizon;
  return Predict(request, response);
}

HealthState ForecastService::health_state() const {
  return health_.Evaluate(MonotonicNowNs(), hub_.Current() != nullptr);
}

std::optional<Tensor> ForecastService::TryPlanForward(
    const std::shared_ptr<const ModelSnapshot>& snapshot, const Tensor& inputs) const {
  if (config_.executor != exec::ExecutorMode::kPlan) return std::nullopt;
  // Contended: another query is executing the plan. ForwardInference is
  // always correct (bitwise-equal output), so don't queue on the arena.
  if (!plan_mu_.TryLock()) return std::nullopt;
  MutexLock lock(plan_mu_, kAdoptLock);
  if (plan_snapshot_.lock() != snapshot) {
    // Hot-swap (or a republish reusing the version number): the cached plans
    // replay the retired snapshot's weights as captured constants/parameters.
    // Invalidate; this query recompiles.
    serve_plans_.Clear();
    plan_snapshot_ = snapshot;
  }
  const std::string key = exec::PlanCache::ShapeKey({&inputs});
  exec::CompiledPlan* plan = serve_plans_.Lookup(key);
  if (plan == nullptr && serve_plans_.ShouldCapture(key)) {
    const std::vector<Tensor> plan_inputs{inputs};
    exec::CompiledPlan::CaptureResult captured = exec::CompiledPlan::Capture(
        plan_inputs,
        [&] {
          return snapshot->model->Forward(autograd::Variable(inputs, /*requires_grad=*/false),
                                         adjacency_);
        },
        /*with_backward=*/false);
    if (captured.plan == nullptr) {
      // Unsupported capture: every later query on this shape falls back to
      // ForwardInference. Recorded once, here, not per query.
      obs::RecordFlightEvent(obs::FlightEventType::kPlanFallback, snapshot->version,
                             /*b=*/0, key.c_str());
    } else {
      obs::RecordFlightEvent(obs::FlightEventType::kPlanCompile, snapshot->version,
                             /*b=*/0, key.c_str());
    }
    serve_plans_.Insert(key, std::move(captured.plan));
    plan_compiles_.fetch_add(1, std::memory_order_relaxed);
    Metrics().plan_compiles.Add();
    // The capturing query answers from the tape build (tape Forward and
    // ForwardInference are bitwise-equal by contract).
    return captured.root->value();
  }
  if (plan == nullptr) return std::nullopt;  // capture failed: permanent fallback
  plan->BindInputs({inputs});
  // Clone: the plan owns (and next run overwrites) the returned storage,
  // while the response outlives this call.
  return plan->RunForward().Clone();
}

std::shared_ptr<const ModelSnapshot> ForecastService::AcquireSnapshot() const {
  if (config_.snapshot_poll_every <= 1) return hub_.Current();
  const int64_t seq = query_seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq % config_.snapshot_poll_every == 0) {
    std::shared_ptr<const ModelSnapshot> fresh = hub_.Current();
    cached_snapshot_.store(fresh, std::memory_order_release);
    return fresh;
  }
  std::shared_ptr<const ModelSnapshot> cached =
      cached_snapshot_.load(std::memory_order_acquire);
  return cached != nullptr ? cached : hub_.Current();
}

void ForecastService::AttemptRollback(int64_t observed_version) const {
  MutexLock lock(rollback_mu_);
  const std::shared_ptr<const ModelSnapshot> current = hub_.Current();
  // Lost the race: another thread already rolled back (or the trainer
  // published past the bad version). Nothing to do.
  if (current == nullptr || current->version != observed_version) return;

  const std::shared_ptr<const ModelSnapshot> restored = hub_.RollBack();
  if (restored != nullptr) {
    std::fprintf(stderr,
                 "[urcl.serve] error spike on snapshot v%lld: rolled back to v%lld\n",
                 static_cast<long long>(observed_version),
                 static_cast<long long>(restored->version));
    cached_snapshot_.store(restored, std::memory_order_release);
    health_.OnSwap(MonotonicNowNs());
    Metrics().rollbacks.Add();
    Metrics().model_version.Set(static_cast<double>(restored->version));
    // The recording thread is the query that crossed the error threshold, so
    // the event carries that request's trace ID — the dump links the
    // rollback to the queries that triggered it.
    obs::RecordFlightEvent(obs::FlightEventType::kRollback, observed_version,
                           restored->version, "error spike");
  } else {
    // No older version to fall back on: the model path is unusable until the
    // trainer publishes a snapshot that passes admission.
    std::fprintf(stderr,
                 "[urcl.serve] error spike on snapshot v%lld with empty history: "
                 "degrading to fallback\n",
                 static_cast<long long>(observed_version));
    health_.MarkModelUnusable();
    obs::RecordFlightEvent(obs::FlightEventType::kRollback, observed_version,
                           /*b=*/-1, "history empty: degraded");
  }
  // Rollback is one of the blackbox's auto-dump incidents: flush the event
  // history next to the process so forensics survive whatever happens next.
  obs::FlightRecorder::Get().AutoDump("rollback");
}

void ForecastService::EnterLameDuck() {
  obs::RecordFlightEvent(obs::FlightEventType::kLameDuck);
  health_.EnterLameDuck();
  NoteHealthState(HealthState::kLameDuck);
}

void ForecastService::NoteHealthState(HealthState state) const {
  const int next = static_cast<int>(state);
  int prev = observed_health_.load(std::memory_order_relaxed);
  if (prev == next) return;
  // One transition event per edge even under concurrent queries; losers of
  // the exchange saw an intermediate state someone else already recorded.
  if (!observed_health_.compare_exchange_strong(prev, next, std::memory_order_relaxed)) {
    return;
  }
  obs::RecordFlightEvent(obs::FlightEventType::kHealthTransition, prev, next,
                         HealthStateName(state));
  Metrics().health_state.Set(static_cast<double>(next));
  if (state == HealthState::kLameDuck) {
    obs::FlightRecorder::Get().AutoDump("lame_duck");
  }
}

Status ForecastService::AnswerDegraded(const core::PredictRequest& request,
                                       core::PredictResponse* response) const {
  URCL_TRACE_SCOPE("serve.predict_degraded");
  const Status status = fallback_.Predict(request, response);
  if (!status.ok()) return status;
  // Belt and braces: the no-non-finite-output invariant holds on every path.
  if (!response->predictions.AllFinite()) {
    response->predictions = Tensor();
    return Status::DataLoss("fallback produced a non-finite forecast");
  }
  response->model_version = 0;  // not a trained-model answer
  response->stage = -1;
  response->degraded = true;
  response->executor = core::AnswerExecutor::kFallback;
  degraded_.fetch_add(1, std::memory_order_relaxed);
  served_.fetch_add(1, std::memory_order_relaxed);
  health_.NoteDegradedServed();
  Metrics().degraded.Add();
  return Status::Ok();
}

int64_t ForecastService::EstimateLatencyNs(int64_t queue_position) const {
  const int64_t ewma = latency_ewma_ns_.load(std::memory_order_relaxed);
  if (ewma <= 0) return 0;  // no sample yet: admit optimistically
  return ewma * (queue_position + 1);
}

Status ForecastService::Predict(const core::PredictRequest& request,
                                core::PredictResponse* response) const {
  // Request-scoped causal trace: honor a caller-supplied ID, mint one
  // otherwise. While the flow is bound, every span below and every flight
  // event this query triggers (shed, quarantine, rollback) carries the ID.
  const uint64_t trace_id =
      request.trace_id != 0 ? request.trace_id : obs::MintTraceId();
  obs::TraceFlow flow(trace_id);
  URCL_TRACE_SCOPE("serve.predict");
  Metrics().queries.Add();
  if (response == nullptr) return Status::InvalidArgument("Predict: null response");
  response->trace_id = trace_id;

  const int64_t now_ns = MonotonicNowNs();
  const bool has_snapshot = hub_.Current() != nullptr;
  const HealthState state = health_.Evaluate(now_ns, has_snapshot);
  NoteHealthState(state);
  Metrics().health_state.Set(static_cast<double>(static_cast<int>(state)));
  response->health_state = static_cast<int32_t>(state);
  if (state == HealthState::kLameDuck) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Metrics().rejected.Add();
    return Status::Unavailable("service is draining (LAME_DUCK); retry against a peer");
  }

  const int64_t deadline_ns =
      request.deadline_ns > 0 ? request.deadline_ns : config_.default_deadline_ns;
  int64_t queue_position = 0;
  {
    URCL_TRACE_SCOPE("serve.admit");
    // Admission control: shed load beyond queue_depth instead of queueing
    // without bound (the caller decides whether to retry).
    queue_position = in_flight_.fetch_add(1, std::memory_order_relaxed);
    if (queue_position >= config_.queue_depth) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Metrics().rejected.Add();
      return Status::Overloaded("service overloaded: queue_depth " +
                                std::to_string(config_.queue_depth) +
                                " queries already in flight");
    }
  }
  InFlightGuard guard(in_flight_);

  {
    URCL_TRACE_SCOPE("serve.validate");
    if (request.inputs.rank() != 4) {
      return Status::InvalidArgument("Predict: inputs must be [B, M, N, C], got rank " +
                                     std::to_string(request.inputs.rank()));
    }
    if (request.inputs.dim(0) > config_.max_batch) {
      return Status::InvalidArgument("Predict: batch " + std::to_string(request.inputs.dim(0)) +
                                     " exceeds max_batch " + std::to_string(config_.max_batch));
    }
    // A client sending NaN/Inf observations is a malformed request, not a model
    // failure — it must not count against the live version's error window.
    if (!request.inputs.AllFinite()) {
      return Status::InvalidArgument("Predict: inputs hold non-finite values");
    }
  }

  // Deadline-aware admission: when the EWMA of recent model-path latencies
  // says this query cannot be answered inside its budget (given the queue
  // ahead of it), shed it up front instead of answering late.
  if (deadline_ns > 0) {
    const int64_t estimate_ns = EstimateLatencyNs(queue_position);
    if (estimate_ns > deadline_ns) {
      deadline_shed_.fetch_add(1, std::memory_order_relaxed);
      Metrics().deadline_shed.Add();
      obs::RecordFlightEvent(obs::FlightEventType::kDeadlineShed, estimate_ns, deadline_ns);
      return Status::DeadlineExceeded(
          "estimated latency " + std::to_string(estimate_ns) + "ns exceeds deadline " +
          std::to_string(deadline_ns) + "ns at queue position " +
          std::to_string(queue_position));
    }
  }

  // Chaos harness: a slowed query stalls here, inside the admission window,
  // so deadline shedding and queue_depth see realistic pressure.
  {
    auto& injector = fault::FaultInjector::Instance();
    if (injector.NextQuerySlowed()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(injector.slow_ms()));
    }
  }

  // Degraded mode: answer from the fallback baseline instead of failing
  // closed. Note a cold service (no snapshot yet) is NOT degraded — it fails
  // with kFailedPrecondition below until the first version is admitted.
  if (state == HealthState::kDegraded) {
    Status status = AnswerDegraded(request, response);
    if (status.ok()) response->stale = health_.WindowStale(now_ns);
    return status;
  }

  const std::shared_ptr<const ModelSnapshot> snapshot = AcquireSnapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("no model snapshot published yet");
  }

  const Stopwatch stopwatch;
  Tensor raw_predictions;
  core::AnswerExecutor executor = core::AnswerExecutor::kTape;
  {
    URCL_TRACE_SCOPE("serve.exec");
    if (std::optional<Tensor> planned = TryPlanForward(snapshot, request.inputs)) {
      raw_predictions = std::move(*planned);
      executor = core::AnswerExecutor::kPlan;
    } else {
      raw_predictions = snapshot->model->ForwardInference(request.inputs, adjacency_);
    }
  }
  Status status = core::FinishPrediction(request, raw_predictions, response);
  if (!status.ok()) return status;  // request problem (bad horizon), not a model error

  // The hard output invariant: a non-finite forecast is quarantined — it
  // never leaves Predict. It counts against the serving version's error
  // window and, past the threshold, triggers automatic rollback.
  if (!response->predictions.AllFinite()) {
    response->predictions = Tensor();
    nonfinite_.fetch_add(1, std::memory_order_relaxed);
    Metrics().nonfinite_outputs.Add();
    obs::RecordFlightEvent(obs::FlightEventType::kNonFiniteQuarantine, snapshot->version,
                           /*b=*/0, "nonfinite forecast");
    if (health_.RecordModelResult(false)) AttemptRollback(snapshot->version);
    return Status::DataLoss("model v" + std::to_string(snapshot->version) +
                            " produced a non-finite forecast (quarantined)");
  }
  (void)health_.RecordModelResult(true);  // healthy sample; never triggers rollback

  // Stamp the version that actually served the query: across a hot-swap,
  // in-flight queries finish on (and report) the version they acquired.
  // Flags are assigned unconditionally so a reused response struct cannot
  // leak a previous answer's degraded/stale verdicts.
  response->model_version = snapshot->version;
  response->stage = snapshot->stage;
  response->degraded = false;
  response->stale = health_.WindowStale(now_ns);
  response->executor = executor;
  served_.fetch_add(1, std::memory_order_relaxed);

  const int64_t sample_ns = stopwatch.ElapsedNs();
  const int64_t prev_ewma = latency_ewma_ns_.load(std::memory_order_relaxed);
  latency_ewma_ns_.store(prev_ewma <= 0 ? sample_ns : prev_ewma + (sample_ns - prev_ewma) / 8,
                         std::memory_order_relaxed);
  Metrics().latency_ns.Observe(static_cast<double>(sample_ns));
  return Status::Ok();
}

}  // namespace serve
}  // namespace urcl
