// urcl::serve — the streaming inference service (tentpole of the serving
// layer). A ForecastService owns three things:
//
//   1. Rolling observation windows: one ring buffer per sensor, filled by
//      IngestTick with raw readings that are normalized at ingest time using
//      the training-time MinMaxNormalizer state, so window assembly is a
//      straight copy with no per-query rescaling.
//   2. A ModelHub of hot-swappable immutable weight snapshots. SnapshotSink()
//      returns a callback for UrclTrainer::SetSnapshotSink: the background
//      training thread publishes checkpoint-format containers, the sink
//      parses them into frozen models and swaps them live; queries pick up
//      the new version lock-free mid-stream.
//   3. The query path: Predict answers batched forecast requests from any
//      number of concurrent client threads via the tape-free inference
//      executor (UrclModel::ForwardInference — bitwise-equal to the training
//      forward), with admission control, urcl.serve.* metrics and trace spans.
#ifndef URCL_SERVE_SERVICE_H_
#define URCL_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "core/urcl.h"
#include "data/normalizer.h"
#include "graph/sensor_network.h"
#include "serve/snapshot.h"
#include "tensor/tensor.h"

namespace urcl {
namespace serve {

// Tuning knobs of a ForecastService. Mirrors the UrclConfig::Validate()
// pattern: construct, adjust fields, then Validate() before wiring the
// service (the constructor aborts on an invalid config, so call Validate()
// directly for early human-readable feedback, e.g. from flag parsing).
struct ServiceConfig {
  // Architecture of the models being served; must match the trainer that
  // publishes snapshots (snapshot parsing rejects mismatches).
  core::UrclConfig model;

  // Rolling-window length in ticks; 0 = the model's input window
  // (model.encoder.input_steps). Must equal the model's input window when
  // queries are answered from the service's own window.
  int64_t window_steps = 0;

  // Largest batch dimension accepted by one Predict call; bigger requests
  // are rejected with an error Status instead of monopolizing the executor.
  int64_t max_batch = 64;

  // Admission-control depth: queries already in flight when a new one
  // arrives beyond this count are shed with an overload error (counted in
  // urcl.serve.rejected) rather than queued without bound.
  int64_t queue_depth = 256;

  // Snapshot poll policy: re-read the hub's current version every Nth query
  // (1 = every query). Larger values trade bounded staleness — at most N-1
  // queries on the retiring version after a swap — for fewer shared-pointer
  // acquisitions on the hot path.
  int64_t snapshot_poll_every = 1;

  // Human-readable message per invalid field; empty when usable.
  std::vector<std::string> Validate() const;

  int64_t EffectiveWindowSteps() const {
    return window_steps > 0 ? window_steps : model.encoder.input_steps;
  }
};

class ForecastService {
 public:
  // `normalizer` is the training-time scaling state; its per-channel min/max
  // are copied so ingest-time normalization matches data::MinMaxNormalizer::
  // Transform bit for bit. `network` supplies the adjacency handed to every
  // inference call (same matrix the trainer conditions on).
  ForecastService(const ServiceConfig& config, const graph::SensorNetwork& network,
                  const data::MinMaxNormalizer& normalizer);

  // Callback for UrclTrainer::SetSnapshotSink: parses the published
  // container and hot-swaps it into the hub. Parse failures increment
  // urcl.serve.snapshot_parse_failures and keep the previous version live.
  core::UrclTrainer::SnapshotSink SnapshotSink();

  // Appends one tick of raw sensor readings ([N, C], unnormalized) to every
  // sensor's ring buffer, normalizing on the way in. Thread-safe against
  // concurrent queries (writer lock); ticks are assumed to arrive from one
  // ingestion thread in stream order.
  void IngestTick(const Tensor& observations);

  // True once every ring holds a full window of ticks.
  bool WindowReady() const;
  int64_t ticks_ingested() const;

  // The current normalized rolling window, [1, M, N, C] in chronological
  // order (oldest tick first) — exactly what a model trained on
  // MinMaxNormalizer-scaled data expects.
  Tensor CurrentWindow() const;

  // Forecasts from the service's own rolling window: assembles
  // CurrentWindow() and answers it like Predict. Fails while the window is
  // still filling.
  Status Forecast(int64_t horizon, core::PredictResponse* response) const;

  // Answers a batched forecast query against the current model version.
  // Safe to call from many threads concurrently; the response is stamped
  // with the version/stage of the snapshot that actually served it, so
  // clients observe hot-swaps. Overload, missing snapshots, oversized
  // batches and bad horizons come back as error Statuses.
  Status Predict(const core::PredictRequest& request, core::PredictResponse* response) const;

  ModelHub& hub() { return hub_; }
  const ModelHub& hub() const { return hub_; }
  const ServiceConfig& config() const { return config_; }

  // Queries answered / shed since construction.
  int64_t served_queries() const { return served_.load(std::memory_order_relaxed); }
  int64_t rejected_queries() const { return rejected_.load(std::memory_order_relaxed); }

 private:
  // Acquires the snapshot for one query, honoring snapshot_poll_every.
  std::shared_ptr<const ModelSnapshot> AcquireSnapshot() const;

  ServiceConfig config_;
  int64_t window_steps_;
  int64_t num_nodes_;
  int64_t num_channels_;
  Tensor adjacency_;  // dense [N, N], shared by every inference call
  std::vector<float> channel_min_;
  std::vector<float> channel_max_;

  // Rolling window storage: ring of `window_steps_` ticks, each tick a
  // contiguous [N, C] block, guarded by a reader/writer lock (ingest writes,
  // query threads read).
  mutable std::shared_mutex window_mu_;
  std::vector<float> ring_;   // [window_steps_, N, C], slot-indexed
  int64_t next_slot_ = 0;     // ring slot the next tick lands in
  int64_t ticks_ = 0;         // total ticks ingested

  ModelHub hub_;
  // Cached snapshot for snapshot_poll_every > 1 (refreshed every Nth query).
  mutable std::atomic<std::shared_ptr<const ModelSnapshot>> cached_snapshot_;
  mutable std::atomic<int64_t> query_seq_{0};

  mutable std::atomic<int64_t> in_flight_{0};
  mutable std::atomic<int64_t> served_{0};
  mutable std::atomic<int64_t> rejected_{0};
};

}  // namespace serve
}  // namespace urcl

#endif  // URCL_SERVE_SERVICE_H_
