// urcl::serve — the streaming inference service (tentpole of the serving
// layer). A ForecastService owns four things:
//
//   1. Rolling observation windows: one ring buffer per sensor, filled by
//      IngestTick with raw readings that are normalized at ingest time using
//      the training-time MinMaxNormalizer state, so window assembly is a
//      straight copy with no per-query rescaling.
//   2. A ModelHub of hot-swappable immutable weight snapshots with an N-deep
//      rollback history. SnapshotSink() returns a callback for
//      UrclTrainer::SetSnapshotSink: the background training thread publishes
//      checkpoint-format containers, the sink runs them through the admission
//      gate (integrity, parse, weight scan, canary — serve/admission.h) and
//      swaps admitted versions live; rejected publishes are quarantined and
//      the incumbent stays up. Queries pick up the new version lock-free
//      mid-stream.
//   3. A health state machine (serve/health.h): model-error spikes trigger
//      automatic rollback to the last-good version; a stalled tick stream or
//      an aging snapshot degrades the service, which then answers from a
//      HistoricalAverage fallback (stamped degraded=true) instead of failing
//      closed; LAME_DUCK drains with typed kUnavailable.
//   4. The query path: Predict answers batched forecast requests from any
//      number of concurrent client threads via the tape-free inference
//      executor (UrclModel::ForwardInference — bitwise-equal to the training
//      forward), with queue-depth and deadline-aware admission control,
//      urcl.serve.* metrics and trace spans. Every failure is a typed Status;
//      a non-finite value never leaves Predict.
#ifndef URCL_SERVE_SERVICE_H_
#define URCL_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/historical_average.h"
#include "common/thread_annotations.h"
#include "core/predictor.h"
#include "core/urcl.h"
#include "data/normalizer.h"
#include "graph/sensor_network.h"
#include "serve/admission.h"
#include "serve/health.h"
#include "serve/snapshot.h"
#include "tensor/tensor.h"

namespace urcl {
namespace serve {

// Tuning knobs of a ForecastService. Mirrors the UrclConfig::Validate()
// pattern: construct, adjust fields, then Validate() before wiring the
// service (the constructor aborts on an invalid config, so call Validate()
// directly for early human-readable feedback, e.g. from flag parsing).
struct ServiceConfig {
  // Architecture of the models being served; must match the trainer that
  // publishes snapshots (snapshot admission rejects mismatches).
  core::UrclConfig model;

  // Rolling-window length in ticks; 0 = the model's input window
  // (model.encoder.input_steps). Must equal the model's input window when
  // queries are answered from the service's own window.
  int64_t window_steps = 0;

  // Largest batch dimension accepted by one Predict call; bigger requests
  // are rejected with an error Status instead of monopolizing the executor.
  int64_t max_batch = 64;

  // Admission-control depth: queries already in flight when a new one
  // arrives beyond this count are shed with a kOverloaded error (counted in
  // urcl.serve.rejected) rather than queued without bound.
  int64_t queue_depth = 256;

  // Snapshot poll policy: re-read the hub's current version every Nth query
  // (1 = every query). Larger values trade bounded staleness — at most N-1
  // queries on the retiring version after a swap — for fewer shared-pointer
  // acquisitions on the hot path.
  int64_t snapshot_poll_every = 1;

  // Which admission gates a published snapshot must pass before going live.
  AdmissionConfig admission;

  // Thresholds of the health state machine (error window, rollback trigger,
  // staleness/age watchdogs, lame-duck drain).
  HealthConfig health;

  // Previously-live versions retained for rollback (ModelHub history depth;
  // 0 = rollback disabled, an error spike marks the model unusable instead).
  int64_t history_depth = 4;

  // Deadline substituted for requests that carry deadline_ns == 0;
  // 0 = requests without an explicit deadline are never deadline-shed.
  int64_t default_deadline_ns = 0;

  // Inference executor (DESIGN.md §12): kPlan captures the current
  // snapshot's forward into a compiled arena program (recompiled on every
  // hot-swap); kTape always runs UrclModel::ForwardInference. Both produce
  // bitwise-identical forecasts; contended queries fall back to
  // ForwardInference rather than queue on the plan. Defaults from URCL_EXEC.
  exec::ExecutorMode executor = exec::DefaultExecutorMode();

  // Human-readable message per invalid field; empty when usable.
  std::vector<std::string> Validate() const;

  int64_t EffectiveWindowSteps() const {
    return window_steps > 0 ? window_steps : model.encoder.input_steps;
  }
};

class ForecastService {
 public:
  // `normalizer` is the training-time scaling state; its per-channel min/max
  // are copied so ingest-time normalization matches data::MinMaxNormalizer::
  // Transform bit for bit. `network` supplies the adjacency handed to every
  // inference call (same matrix the trainer conditions on).
  ForecastService(const ServiceConfig& config, const graph::SensorNetwork& network,
                  const data::MinMaxNormalizer& normalizer);

  // Callback for UrclTrainer::SetSnapshotSink: runs the published container
  // through the admission gate and hot-swaps it into the hub on success.
  // Failures quarantine the snapshot — counted in
  // urcl.serve.snapshots_quarantined (and the legacy
  // urcl.serve.snapshot_parse_failures), logged to stderr — and keep the
  // previous version live.
  core::UrclTrainer::SnapshotSink SnapshotSink();

  // Appends one tick of raw sensor readings ([N, C], unnormalized) to every
  // sensor's ring buffer, normalizing on the way in. Thread-safe against
  // concurrent queries (writer lock); ticks are assumed to arrive from one
  // ingestion thread in stream order. Feeds the staleness watchdog; under
  // fault injection ticks may be dropped or duplicated here (chaos harness).
  void IngestTick(const Tensor& observations);

  // True once every ring holds a full window of ticks.
  bool WindowReady() const;
  int64_t ticks_ingested() const;

  // The current normalized rolling window, [1, M, N, C] in chronological
  // order (oldest tick first) — exactly what a model trained on
  // MinMaxNormalizer-scaled data expects.
  Tensor CurrentWindow() const;

  // Forecasts from the service's own rolling window: assembles
  // CurrentWindow() and answers it like Predict. Fails while the window is
  // still filling. The response's `stale` flag reports the staleness
  // watchdog's verdict on the window that answered.
  Status Forecast(int64_t horizon, core::PredictResponse* response) const;

  // Answers a batched forecast query against the current model version.
  // Safe to call from many threads concurrently; the response is stamped
  // with the version/stage of the snapshot that actually served it, so
  // clients observe hot-swaps and rollbacks. Every failure is a typed
  // Status: kOverloaded (queue full), kDeadlineExceeded (budget unmeetable),
  // kUnavailable (lame duck), kInvalidArgument (malformed request),
  // kFailedPrecondition (no snapshot yet), kDataLoss (model produced a
  // non-finite forecast — quarantined, never returned). When the service is
  // DEGRADED it answers from the HistoricalAverage fallback with
  // degraded=true instead of failing.
  Status Predict(const core::PredictRequest& request, core::PredictResponse* response) const;

  ModelHub& hub() { return hub_; }
  const ModelHub& hub() const { return hub_; }
  const ServiceConfig& config() const { return config_; }

  // Current verdict of the health state machine.
  HealthState health_state() const;
  HealthMonitor& health() { return health_; }

  // Begins terminal drain: every subsequent query is shed with kUnavailable.
  // Records a lame_duck flight event and dumps the flight recorder (the
  // blackbox must be on disk before the process drains away).
  void EnterLameDuck();

  // Queries answered / shed since construction.
  int64_t served_queries() const { return served_.load(std::memory_order_relaxed); }
  int64_t rejected_queries() const { return rejected_.load(std::memory_order_relaxed); }

  // Failure-model counters (also exported as urcl.serve.* metrics).
  int64_t quarantined_snapshots() const {
    return quarantined_.load(std::memory_order_relaxed);
  }
  int64_t deadline_shed() const { return deadline_shed_.load(std::memory_order_relaxed); }
  int64_t degraded_queries() const { return degraded_.load(std::memory_order_relaxed); }
  int64_t nonfinite_outputs() const { return nonfinite_.load(std::memory_order_relaxed); }
  int64_t rollback_count() const { return hub_.rollback_count(); }

  // Compiled inference plans built since construction (also the
  // urcl.serve.plan_compiles counter). Advances on every hot-swap that
  // serves a query in plan mode — each new version recompiles.
  int64_t plan_compiles() const { return plan_compiles_.load(std::memory_order_relaxed); }

 private:
  // Answers `inputs` via the compiled plan for `snapshot`, compiling it
  // first when this is the first plan-mode query on this (snapshot, shape).
  // Returns nullopt — caller uses ForwardInference — in tape mode, when the
  // plan mutex is contended, or when this shape's capture failed.
  std::optional<Tensor> TryPlanForward(const std::shared_ptr<const ModelSnapshot>& snapshot,
                                       const Tensor& inputs) const;

  // Health-state change detection for the flight recorder: records a
  // health_transition event when `state` differs from the last state this
  // service observed, and auto-dumps on the transition into LAME_DUCK.
  void NoteHealthState(HealthState state) const;
  // Acquires the snapshot for one query, honoring snapshot_poll_every.
  std::shared_ptr<const ModelSnapshot> AcquireSnapshot() const;

  // Serializes `observed_version`'s removal: rolls the hub back to the
  // previous version (resetting the health window) or, when no history
  // remains, marks the model path unusable. Concurrent callers that lost the
  // race (the hub moved past `observed_version` already) do nothing.
  void AttemptRollback(int64_t observed_version) const;

  // Answers `request` from the HistoricalAverage fallback, stamping
  // degraded=true / version 0 / stage -1.
  Status AnswerDegraded(const core::PredictRequest& request,
                        core::PredictResponse* response) const;

  // Deadline admission: estimated time to answer, from the EWMA of recent
  // model-path latencies scaled by the queue position ahead of this query.
  int64_t EstimateLatencyNs(int64_t queue_position) const;

  ServiceConfig config_;
  int64_t window_steps_;
  int64_t num_nodes_;
  int64_t num_channels_;
  Tensor adjacency_;  // dense [N, N], shared by every inference call
  std::vector<float> channel_min_;
  std::vector<float> channel_max_;

  // Rolling window storage: ring of `window_steps_` ticks, each tick a
  // contiguous [N, C] block, guarded by a reader/writer lock (ingest writes,
  // query threads read).
  mutable SharedMutex window_mu_;
  // [window_steps_, N, C], slot-indexed ring storage.
  std::vector<float> ring_ URCL_GUARDED_BY(window_mu_);
  // Ring slot the next tick lands in.
  int64_t next_slot_ URCL_GUARDED_BY(window_mu_) = 0;
  // Total ticks ingested.
  int64_t ticks_ URCL_GUARDED_BY(window_mu_) = 0;

  mutable ModelHub hub_;
  mutable HealthMonitor health_;
  baselines::HistoricalAverage fallback_;
  // Serializes rollback decisions (never on the success path). Guards no
  // members: the hub's state is its own; this capability only makes the
  // observe-decide-rollback sequence in AttemptRollback atomic.
  mutable Mutex rollback_mu_;

  // Compiled-executor state: plans for the live snapshot, keyed by input
  // shape. A hot-swap invalidates the whole cache (plan_snapshot_ identity
  // mismatch) and the next query recompiles against the new weights. One
  // mutex serializes plan execution; contended queries take the
  // ForwardInference path instead of blocking (TryPlanForward).
  mutable Mutex plan_mu_;
  mutable exec::PlanCache serve_plans_ URCL_GUARDED_BY(plan_mu_);
  // Snapshot the cache was built for — identity, not version: a republish
  // can reuse a version number with different weights (rollback, re-admit),
  // and the plans captured the old weights as constants.
  mutable std::weak_ptr<const ModelSnapshot> plan_snapshot_ URCL_GUARDED_BY(plan_mu_);
  mutable std::atomic<int64_t> plan_compiles_{0};

  // Cached snapshot for snapshot_poll_every > 1 (refreshed every Nth query).
  mutable std::atomic<std::shared_ptr<const ModelSnapshot>> cached_snapshot_;
  mutable std::atomic<int64_t> query_seq_{0};

  // Last health state this service observed (int of HealthState), for flight
  // recorder transition events. Evaluate() computes state on the fly; this
  // tracks edges without widening the monitor's API.
  mutable std::atomic<int> observed_health_{0};

  mutable std::atomic<int64_t> in_flight_{0};
  mutable std::atomic<int64_t> served_{0};
  mutable std::atomic<int64_t> rejected_{0};
  mutable std::atomic<int64_t> quarantined_{0};
  mutable std::atomic<int64_t> deadline_shed_{0};
  mutable std::atomic<int64_t> degraded_{0};
  mutable std::atomic<int64_t> nonfinite_{0};
  // EWMA of model-path latency in ns (bit-cast double); 0 = no sample yet.
  mutable std::atomic<int64_t> latency_ewma_ns_{0};
};

}  // namespace serve
}  // namespace urcl

#endif  // URCL_SERVE_SERVICE_H_
