#include "serve/admission.h"

#include <cmath>
#include <string>
#include <utility>

namespace urcl {
namespace serve {

std::vector<std::string> AdmissionConfig::Validate() const {
  std::vector<std::string> errors;
  if (!(canary_abs_bound > 0.0f)) {
    errors.push_back("canary_abs_bound must be > 0");
  }
  return errors;
}

Status AdmitSnapshot(const checkpoint::Container& container, const core::UrclConfig& config,
                     const AdmissionConfig& admission, const Tensor& probe_window,
                     const Tensor& adjacency, std::shared_ptr<const ModelSnapshot>* out) {
  if (out == nullptr) return Status::InvalidArgument("AdmitSnapshot: null output snapshot");

  // Gate 2: schema/architecture parse.
  std::shared_ptr<const ModelSnapshot> snapshot;
  {
    const Status status = ParseModelSnapshot(container, config, &snapshot);
    if (!status.ok()) return status;
  }

  // Gate 3: all-finite weight scan. A snapshot whose parameters already hold
  // NaN/Inf can only ever produce garbage; reject it before it serves.
  if (admission.scan_weights) {
    const std::vector<Tensor> state = snapshot->model->StateDict();
    for (size_t i = 0; i < state.size(); ++i) {
      if (!state[i].AllFinite()) {
        return Status::DataLoss("snapshot v" + std::to_string(snapshot->version) +
                                " rejected: parameter tensor " + std::to_string(i) +
                                " holds non-finite values");
      }
    }
  }

  // Gate 4: canary inference on the pinned probe window. Finite weights can
  // still be explosive (a diverged trainer); the canary bounds the output.
  if (admission.run_canary) {
    const Tensor canary = snapshot->model->ForwardInference(probe_window, adjacency);
    if (!canary.AllFinite()) {
      return Status::DataLoss("snapshot v" + std::to_string(snapshot->version) +
                              " rejected: canary inference produced non-finite output");
    }
    const float* data = canary.data();
    const int64_t count = canary.NumElements();
    for (int64_t i = 0; i < count; ++i) {
      if (std::fabs(data[i]) > admission.canary_abs_bound) {
        return Status::DataLoss(
            "snapshot v" + std::to_string(snapshot->version) +
            " rejected: canary output " + std::to_string(data[i]) +
            " outside |y| <= " + std::to_string(admission.canary_abs_bound));
      }
    }
  }

  *out = std::move(snapshot);
  return Status::Ok();
}

Status AdmitSnapshotBytes(const std::string& bytes, const core::UrclConfig& config,
                          const AdmissionConfig& admission, const Tensor& probe_window,
                          const Tensor& adjacency, std::shared_ptr<const ModelSnapshot>* out) {
  // Gate 1: container integrity — magic, section structure, per-section and
  // whole-body CRC32 (reused from src/checkpoint/).
  checkpoint::Container container;
  {
    const Status status = checkpoint::Container::Parse(bytes, &container);
    if (!status.ok()) {
      return Status::DataLoss("snapshot container rejected: " + status.message());
    }
  }
  return AdmitSnapshot(container, config, admission, probe_window, adjacency, out);
}

}  // namespace serve
}  // namespace urcl
