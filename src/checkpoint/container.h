// The unified checkpoint container: a versioned sequence of named,
// CRC32-checksummed byte sections. One container snapshots everything a
// training run needs to resume (model parameters, optimizer moments, replay
// buffer, RNG streams, progress cursor — see core/urcl.cc for the section
// schema). The format is deliberately dumb: it knows nothing about tensors,
// so any layer can contribute a section.
//
// On-disk layout (host-endian; single-architecture format):
//
//   u64  magic "URCLCKPT"
//   u32  container version
//   u32  section count
//   per section:
//     u32  name length (1..255) | name bytes
//     u64  payload length       | u32 crc32(payload) | payload bytes
//   u32  crc32 of every byte after the magic (catches header corruption the
//        per-section CRCs cannot see)
//
// Every read validates magic, version, bounds and both CRC levels, returning
// an actionable error Status instead of aborting — the caller falls back to
// the next checkpoint in the rotation (see manager.h).
#ifndef URCL_CHECKPOINT_CONTAINER_H_
#define URCL_CHECKPOINT_CONTAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace urcl {
namespace checkpoint {

inline constexpr uint32_t kContainerVersion = 1;

struct Section {
  std::string name;
  std::string payload;
};

class Container {
 public:
  // Appends a section; names should be unique (Find returns the first match).
  void Add(std::string name, std::string payload);

  // Payload of the named section, or nullptr when absent.
  const std::string* Find(const std::string& name) const;

  const std::vector<Section>& sections() const { return sections_; }

  std::string SerializeToString() const;

  // Writes atomically: serialize to `path`.tmp, flush, then rename over
  // `path` — a crash mid-write never leaves a half-written checkpoint under
  // the final name.
  Status WriteFile(const std::string& path) const;

  // Parses + fully validates `bytes`; `out` is only modified on success.
  static Status Parse(const std::string& bytes, Container* out);

  static Status ReadFile(const std::string& path, Container* out);

 private:
  std::vector<Section> sections_;
};

}  // namespace checkpoint
}  // namespace urcl

#endif  // URCL_CHECKPOINT_CONTAINER_H_
