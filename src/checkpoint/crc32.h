// CRC-32 (IEEE 802.3 / zlib polynomial 0xEDB88320) used to checksum every
// checkpoint section so corrupted or truncated files are rejected instead of
// loaded into a live training run.
#ifndef URCL_CHECKPOINT_CRC32_H_
#define URCL_CHECKPOINT_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace urcl {
namespace checkpoint {

// One-shot CRC of `size` bytes at `data`.
uint32_t Crc32(const void* data, size_t size);

inline uint32_t Crc32(const std::string& bytes) { return Crc32(bytes.data(), bytes.size()); }

// Incremental form: feed `crc` from a previous call (start with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace checkpoint
}  // namespace urcl

#endif  // URCL_CHECKPOINT_CRC32_H_
