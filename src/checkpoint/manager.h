// Checkpoint rotation: numbered container files in a directory, atomic
// writes, retention-N pruning, and newest-valid fallback on load. A corrupted
// or truncated checkpoint (detected via the container CRCs) is skipped with a
// diagnostic and the next-newest one is tried, so a crash mid-write — or a
// flipped byte on disk — costs at most one checkpoint interval of progress.
#ifndef URCL_CHECKPOINT_MANAGER_H_
#define URCL_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "checkpoint/container.h"
#include "common/status.h"

namespace urcl {
namespace checkpoint {

struct ManagerOptions {
  std::string dir;
  // Newest checkpoints kept on disk; older ones are pruned after each save.
  int64_t retention = 3;
  // Files are named <prefix>-<8-digit-seq>.urcl.
  std::string prefix = "ckpt";
};

class CheckpointManager {
 public:
  // Creates `options.dir` (and parents) if missing; aborts on invalid options.
  explicit CheckpointManager(ManagerOptions options);

  // Writes `container` as the next sequence number and prunes beyond
  // retention. Pruning failures are ignored (stale files are re-pruned next
  // save); write failures are returned.
  Status Save(const Container& container);

  // Loads the newest checkpoint that parses and validates. Each rejected
  // file appends one line to *diagnostics (may be nullptr). Returns an error
  // when the directory holds no valid checkpoint.
  Status LoadNewestValid(Container* out, std::string* diagnostics) const;

  // Checkpoint paths in the directory, oldest first.
  std::vector<std::string> ListCheckpoints() const;

  // Sequence number of the last successful Save in this process (0 = none).
  int64_t last_sequence() const { return last_sequence_; }

  const ManagerOptions& options() const { return options_; }

 private:
  // Parses the sequence number out of a checkpoint filename; -1 if foreign.
  int64_t SequenceOf(const std::string& filename) const;

  ManagerOptions options_;
  int64_t last_sequence_ = 0;
};

}  // namespace checkpoint
}  // namespace urcl

#endif  // URCL_CHECKPOINT_MANAGER_H_
