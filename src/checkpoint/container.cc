#include "checkpoint/container.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "checkpoint/crc32.h"
#include "common/check.h"

namespace urcl {
namespace checkpoint {
namespace {

constexpr uint64_t kMagic = 0x54504B434C435255ull;  // "URCLCKPT" little-endian
constexpr size_t kMaxSectionName = 255;

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Cursor over the serialized bytes with bounds-checked POD reads.
struct ByteReader {
  const std::string& bytes;
  size_t pos = 0;

  size_t remaining() const { return bytes.size() - pos; }

  template <typename T>
  bool Read(T* value) {
    if (remaining() < sizeof(T)) return false;
    std::memcpy(value, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool ReadString(size_t length, std::string* value) {
    if (remaining() < length) return false;
    value->assign(bytes, pos, length);
    pos += length;
    return true;
  }
};

}  // namespace

void Container::Add(std::string name, std::string payload) {
  URCL_CHECK(!name.empty() && name.size() <= kMaxSectionName)
      << "section name must be 1..255 bytes";
  sections_.push_back(Section{std::move(name), std::move(payload)});
}

const std::string* Container::Find(const std::string& name) const {
  for (const Section& section : sections_) {
    if (section.name == name) return &section.payload;
  }
  return nullptr;
}

std::string Container::SerializeToString() const {
  std::string out;
  AppendPod(&out, kMagic);
  AppendPod(&out, kContainerVersion);
  AppendPod(&out, static_cast<uint32_t>(sections_.size()));
  for (const Section& section : sections_) {
    AppendPod(&out, static_cast<uint32_t>(section.name.size()));
    out.append(section.name);
    AppendPod(&out, static_cast<uint64_t>(section.payload.size()));
    AppendPod(&out, Crc32(section.payload));
    out.append(section.payload);
  }
  // Whole-body CRC over everything after the magic.
  AppendPod(&out, Crc32(out.data() + sizeof(kMagic), out.size() - sizeof(kMagic)));
  return out;
}

Status Container::Parse(const std::string& bytes, Container* out) {
  ByteReader reader{bytes};
  uint64_t magic = 0;
  if (!reader.Read(&magic)) return Status::Error("checkpoint truncated: no magic");
  if (magic != kMagic) return Status::Error("bad checkpoint magic: not a URCL checkpoint");

  // Validate the trailer CRC first: any single flipped byte after the magic
  // is caught here with one message, before field-level parsing.
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t)) {
    return Status::Error("checkpoint truncated: no body");
  }
  uint32_t stored_total = 0;
  std::memcpy(&stored_total, bytes.data() + bytes.size() - sizeof(uint32_t), sizeof(uint32_t));
  const uint32_t actual_total =
      Crc32(bytes.data() + sizeof(kMagic), bytes.size() - sizeof(kMagic) - sizeof(uint32_t));
  if (stored_total != actual_total) {
    char message[96];
    std::snprintf(message, sizeof(message),
                  "checkpoint body CRC mismatch (stored %08x, computed %08x)", stored_total,
                  actual_total);
    return Status::Error(message);
  }

  uint32_t version = 0;
  if (!reader.Read(&version)) return Status::Error("checkpoint truncated: no version");
  if (version != kContainerVersion) {
    return Status::Error("unsupported checkpoint version " + std::to_string(version) +
                         " (this build reads version " + std::to_string(kContainerVersion) +
                         ")");
  }
  uint32_t count = 0;
  if (!reader.Read(&count)) return Status::Error("checkpoint truncated: no section count");

  Container parsed;
  for (uint32_t i = 0; i < count; ++i) {
    const std::string where = "section " + std::to_string(i);
    uint32_t name_len = 0;
    if (!reader.Read(&name_len)) return Status::Error(where + ": truncated name length");
    if (name_len == 0 || name_len > kMaxSectionName) {
      return Status::Error(where + ": implausible name length " + std::to_string(name_len));
    }
    Section section;
    if (!reader.ReadString(name_len, &section.name)) {
      return Status::Error(where + ": truncated name");
    }
    uint64_t payload_len = 0;
    uint32_t stored_crc = 0;
    if (!reader.Read(&payload_len) || !reader.Read(&stored_crc)) {
      return Status::Error("section '" + section.name + "': truncated header");
    }
    if (payload_len > reader.remaining()) {
      return Status::Error("section '" + section.name + "': payload length " +
                           std::to_string(payload_len) + " exceeds the " +
                           std::to_string(reader.remaining()) + " bytes remaining");
    }
    if (!reader.ReadString(static_cast<size_t>(payload_len), &section.payload)) {
      return Status::Error("section '" + section.name + "': truncated payload");
    }
    const uint32_t actual_crc = Crc32(section.payload);
    if (actual_crc != stored_crc) {
      char message[64];
      std::snprintf(message, sizeof(message), "CRC mismatch (stored %08x, computed %08x)",
                    stored_crc, actual_crc);
      return Status::Error("section '" + section.name + "': " + message);
    }
    parsed.sections_.push_back(std::move(section));
  }
  if (reader.remaining() != sizeof(uint32_t)) {
    return Status::Error("checkpoint has " + std::to_string(reader.remaining()) +
                         " trailing bytes after the last section (expected 4)");
  }
  *out = std::move(parsed);
  return Status::Ok();
}

Status Container::WriteFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  const std::string bytes = SerializeToString();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return Status::Error("cannot open " + tmp + " for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::Error("write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Error("rename " + tmp + " -> " + path + " failed");
  }
  return Status::Ok();
}

Status Container::ReadFile(const std::string& path, Container* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::Error("cannot open " + path + " for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Error("read failed for " + path);
  const Status status = Parse(buffer.str(), out);
  if (!status.ok()) return Status::Error(path + ": " + status.message());
  return Status::Ok();
}

}  // namespace checkpoint
}  // namespace urcl
