#include "checkpoint/manager.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/check.h"

namespace urcl {
namespace checkpoint {

namespace fs = std::filesystem;

CheckpointManager::CheckpointManager(ManagerOptions options) : options_(std::move(options)) {
  URCL_CHECK(!options_.dir.empty()) << "checkpoint dir must be set";
  URCL_CHECK_GT(options_.retention, 0);
  URCL_CHECK(!options_.prefix.empty());
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  URCL_CHECK(!ec) << "cannot create checkpoint dir " << options_.dir << ": " << ec.message();

  // Continue an existing rotation instead of overwriting it.
  for (const std::string& path : ListCheckpoints()) {
    last_sequence_ = std::max(last_sequence_, SequenceOf(fs::path(path).filename().string()));
  }
}

int64_t CheckpointManager::SequenceOf(const std::string& filename) const {
  const std::string prefix = options_.prefix + "-";
  const std::string suffix = ".urcl";
  if (filename.size() <= prefix.size() + suffix.size()) return -1;
  if (filename.compare(0, prefix.size(), prefix) != 0) return -1;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(), suffix) != 0) return -1;
  const std::string digits =
      filename.substr(prefix.size(), filename.size() - prefix.size() - suffix.size());
  if (digits.empty()) return -1;
  int64_t sequence = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return -1;
    sequence = sequence * 10 + (c - '0');
  }
  return sequence;
}

std::vector<std::string> CheckpointManager::ListCheckpoints() const {
  std::vector<std::pair<int64_t, std::string>> found;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const int64_t sequence = SequenceOf(entry.path().filename().string());
    if (sequence >= 0) found.emplace_back(sequence, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [sequence, path] : found) paths.push_back(std::move(path));
  return paths;
}

Status CheckpointManager::Save(const Container& container) {
  const int64_t sequence = last_sequence_ + 1;
  char name[64];
  std::snprintf(name, sizeof(name), "%s-%08lld.urcl", options_.prefix.c_str(),
                static_cast<long long>(sequence));
  const std::string path = (fs::path(options_.dir) / name).string();
  const Status status = container.WriteFile(path);
  if (!status.ok()) return status;
  last_sequence_ = sequence;

  const std::vector<std::string> all = ListCheckpoints();
  const int64_t excess = static_cast<int64_t>(all.size()) - options_.retention;
  for (int64_t i = 0; i < excess; ++i) std::remove(all[static_cast<size_t>(i)].c_str());
  return Status::Ok();
}

Status CheckpointManager::LoadNewestValid(Container* out, std::string* diagnostics) const {
  const std::vector<std::string> all = ListCheckpoints();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    Container container;
    const Status status = Container::ReadFile(*it, &container);
    if (status.ok()) {
      *out = std::move(container);
      return Status::Ok();
    }
    if (diagnostics != nullptr) {
      diagnostics->append("rejected " + status.message() + "\n");
    }
  }
  return Status::Error("no valid checkpoint in " + options_.dir + " (" +
                       std::to_string(all.size()) + " candidate file(s))");
}

}  // namespace checkpoint
}  // namespace urcl
