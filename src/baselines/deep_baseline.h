// Generic deep-baseline harness: any StBackbone + STDecoder trained with
// plain MAE (no replay, no SSL). All six deep baselines of Sec. V-A2 are
// instances of this wrapper with their defining encoder.
#ifndef URCL_BASELINES_DEEP_BASELINE_H_
#define URCL_BASELINES_DEEP_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/backbone.h"
#include "core/predictor.h"
#include "core/stdecoder.h"
#include "graph/sensor_network.h"
#include "nn/optimizer.h"

namespace urcl {
namespace baselines {

struct DeepBaselineOptions {
  int64_t decoder_hidden = 128;
  int64_t output_steps = 1;
  int64_t batch_size = 8;
  float learning_rate = 2e-3f;
  float grad_clip = 5.0f;
  int64_t max_batches_per_epoch = 40;  // 0 = every window
  uint64_t seed = 1;
};

class DeepBaseline : public core::StPredictor, public nn::Module {
 public:
  DeepBaseline(std::string name, std::unique_ptr<core::StBackbone> encoder,
               const DeepBaselineOptions& options, const graph::SensorNetwork& network,
               Rng& rng);

  std::string name() const override { return name_; }

  std::vector<float> TrainStage(const data::StDataset& train, int64_t epochs) override;

  std::vector<float> TrainStageWithValidation(const data::StDataset& train,
                                              const data::StDataset& val, int64_t max_epochs,
                                              int64_t patience) override;

  Status Predict(const core::PredictRequest& request,
                 core::PredictResponse* response) const override;
  using core::StPredictor::Predict;  // re-expose the deprecated Tensor shim

  // Saves/restores the model parameters (binary tensor file).
  void SaveCheckpoint(const std::string& path) const;
  void LoadCheckpoint(const std::string& path);

  core::StBackbone& encoder() { return *encoder_; }

 private:
  std::string name_;
  DeepBaselineOptions options_;
  Tensor adjacency_;
  std::unique_ptr<core::StBackbone> encoder_;
  std::unique_ptr<core::StDecoder> decoder_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace baselines
}  // namespace urcl

#endif  // URCL_BASELINES_DEEP_BASELINE_H_
