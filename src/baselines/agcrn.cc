#include "baselines/agcrn.h"

#include "autograd/ops.h"
#include "common/check.h"

namespace urcl {
namespace baselines {

namespace ag = ::urcl::autograd;

AgcrnEncoder::AgcrnEncoder(const core::BackboneConfig& config, Rng& rng) : config_(config) {
  adaptive_ = std::make_unique<nn::AdaptiveAdjacency>(config.num_nodes,
                                                      config.adaptive_embedding_dim, rng);
  RegisterChild("adaptive", adaptive_.get());
  // Gate input: [x_t, h] and its graph-convolved copy, concatenated.
  const int64_t gate_in = 2 * (config.in_channels + config.hidden_channels);
  update_gate_ = std::make_unique<nn::Linear>(gate_in, config.hidden_channels, rng);
  RegisterChild("update_gate", update_gate_.get());
  reset_gate_ = std::make_unique<nn::Linear>(gate_in, config.hidden_channels, rng);
  RegisterChild("reset_gate", reset_gate_.get());
  candidate_ = std::make_unique<nn::Linear>(gate_in, config.hidden_channels, rng);
  RegisterChild("candidate", candidate_.get());
  output_projection_ =
      std::make_unique<nn::Linear>(config.hidden_channels, config.latent_channels, rng);
  RegisterChild("output_projection", output_projection_.get());
}

Variable AgcrnEncoder::AdaptiveConv(const nn::Linear& projection, const Variable& x,
                                    const Variable& adaptive) const {
  // [N, N] x [B, N, F] -> [B, N, F]; concat with the identity term.
  Variable mixed = ag::MatMul(adaptive, x);
  return projection.Forward(ag::Concat({x, mixed}, -1));
}

Variable AgcrnEncoder::Encode(const Variable& observations, const Tensor& adjacency) const {
  URCL_CHECK_EQ(observations.shape().rank(), 4) << "expected [B, M, N, C]";
  (void)adjacency;  // AGCRN learns its graph from node embeddings
  const int64_t batch = observations.shape().dim(0);
  const int64_t steps = observations.shape().dim(1);
  const int64_t nodes = observations.shape().dim(2);
  const int64_t channels = observations.shape().dim(3);
  URCL_CHECK_EQ(nodes, config_.num_nodes);

  const Variable adaptive = adaptive_->Forward();
  Variable h(Tensor::Zeros(Shape{batch, nodes, config_.hidden_channels}),
             /*requires_grad=*/false);
  for (int64_t t = 0; t < steps; ++t) {
    Variable x_t = ag::Reshape(
        ag::Slice(observations, {0, t, 0, 0}, {batch, 1, nodes, channels}),
        Shape{batch, nodes, channels});
    Variable xh = ag::Concat({x_t, h}, -1);
    Variable u = ag::Sigmoid(AdaptiveConv(*update_gate_, xh, adaptive));
    Variable r = ag::Sigmoid(AdaptiveConv(*reset_gate_, xh, adaptive));
    Variable x_rh = ag::Concat({x_t, ag::Mul(r, h)}, -1);
    Variable c = ag::Tanh(AdaptiveConv(*candidate_, x_rh, adaptive));
    Variable one_minus_u = ag::AddScalar(ag::Neg(u), 1.0f);
    h = ag::Add(ag::Mul(u, h), ag::Mul(one_minus_u, c));
  }
  Variable latent = output_projection_->Forward(h);  // [B, N, L]
  latent = ag::Transpose(latent, {0, 2, 1});
  return ag::Reshape(latent, Shape{batch, config_.latent_channels, nodes, 1});
}

}  // namespace baselines
}  // namespace urcl
