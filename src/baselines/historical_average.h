// Trivial baseline: predicts the mean of the input window's target channel.
// Useful as a sanity floor in tests and benches.
#ifndef URCL_BASELINES_HISTORICAL_AVERAGE_H_
#define URCL_BASELINES_HISTORICAL_AVERAGE_H_

#include <string>
#include <vector>

#include "core/predictor.h"

namespace urcl {
namespace baselines {

class HistoricalAverage : public core::StPredictor {
 public:
  HistoricalAverage(int64_t output_steps, int64_t target_channel);

  std::string name() const override { return "HistoricalAverage"; }
  std::vector<float> TrainStage(const data::StDataset& train, int64_t epochs) override;
  Status Predict(const core::PredictRequest& request,
                 core::PredictResponse* response) const override;
  using core::StPredictor::Predict;  // re-expose the deprecated Tensor shim

 private:
  int64_t output_steps_;
  int64_t target_channel_;
};

}  // namespace baselines
}  // namespace urcl

#endif  // URCL_BASELINES_HISTORICAL_AVERAGE_H_
