// STGODE-style encoder: a tensor-ODE block — the latent evolves by explicit
// Euler steps of dh/dt = GCN(h) + h0 - h (continuous residual propagation
// with a restart term) — combined with temporal dilated convolutions.
#ifndef URCL_BASELINES_STGODE_H_
#define URCL_BASELINES_STGODE_H_

#include <memory>

#include "core/backbone.h"
#include "nn/gcn.h"
#include "nn/linear.h"
#include "nn/tcn.h"

namespace urcl {
namespace baselines {

using autograd::Variable;

class StgodeEncoder : public core::StBackbone {
 public:
  StgodeEncoder(const core::BackboneConfig& config, int64_t ode_steps, float step_size,
                Rng& rng);

  Variable Encode(const Variable& observations, const Tensor& adjacency) const override;

  int64_t latent_channels() const override { return config_.latent_channels; }
  int64_t latent_time() const override { return latent_time_; }
  std::string name() const override { return "STGODE"; }

 private:
  core::BackboneConfig config_;
  int64_t ode_steps_;
  float step_size_;
  int64_t latent_time_ = 0;
  std::unique_ptr<nn::ChannelLinear> input_projection_;
  std::unique_ptr<nn::GatedTcn> pre_tcn_;
  std::unique_ptr<nn::DiffusionGcn> ode_gcn_;
  std::unique_ptr<nn::GatedTcn> post_tcn_;
  std::unique_ptr<nn::ChannelLinear> output_projection_;
};

}  // namespace baselines
}  // namespace urcl

#endif  // URCL_BASELINES_STGODE_H_
