#include "baselines/deep_baseline.h"

#include <algorithm>

#include <limits>

#include "common/check.h"
#include "tensor/serialize.h"
#include "nn/loss.h"

namespace urcl {
namespace baselines {

DeepBaseline::DeepBaseline(std::string name, std::unique_ptr<core::StBackbone> encoder,
                           const DeepBaselineOptions& options,
                           const graph::SensorNetwork& network, Rng& rng)
    : name_(std::move(name)),
      options_(options),
      adjacency_(network.AdjacencyMatrix()),
      encoder_(std::move(encoder)) {
  URCL_CHECK(encoder_ != nullptr);
  RegisterChild("encoder", encoder_.get());
  decoder_ = std::make_unique<core::StDecoder>(encoder_->latent_channels(),
                                               encoder_->latent_time(), options.decoder_hidden,
                                               options.output_steps, rng);
  RegisterChild("decoder", decoder_.get());
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), options.learning_rate);
}

std::vector<float> DeepBaseline::TrainStage(const data::StDataset& train, int64_t epochs) {
  URCL_CHECK_GT(epochs, 0);
  const int64_t num_samples = train.NumSamples();
  URCL_CHECK_GT(num_samples, 0) << "train split has no complete windows";
  SetTraining(true);

  const int64_t batch = options_.batch_size;
  int64_t budget = num_samples;
  if (options_.max_batches_per_epoch > 0) {
    budget = std::min(budget, options_.max_batches_per_epoch * batch);
  }
  // Evenly spaced windows across the stage, interleaved so every minibatch
  // spans the whole stage: batch k = {base[k], base[num_batches + k], ...}.
  // In-batch diversity matters for the GraphCL negatives (consecutive
  // overlapping windows would be indistinguishable) and stabilizes SGD.
  std::vector<int64_t> base;
  base.reserve(static_cast<size_t>(budget));
  for (int64_t i = 0; i < budget; ++i) base.push_back(i * num_samples / budget);
  const int64_t num_batches = (budget + batch - 1) / batch;
  std::vector<int64_t> schedule;
  schedule.reserve(static_cast<size_t>(budget));
  for (int64_t k = 0; k < num_batches; ++k) {
    for (int64_t j = 0; j < batch; ++j) {
      const int64_t index = j * num_batches + k;
      if (index < budget) schedule.push_back(base[static_cast<size_t>(index)]);
    }
  }

  std::vector<float> epoch_losses;
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    double loss_sum = 0.0;
    int64_t steps = 0;
    for (int64_t start = 0; start < static_cast<int64_t>(schedule.size()); start += batch) {
      const int64_t count =
          std::min<int64_t>(batch, static_cast<int64_t>(schedule.size()) - start);
      std::vector<int64_t> indices(schedule.begin() + start, schedule.begin() + start + count);
      const auto [inputs, targets] = train.MakeBatch(indices);
      autograd::Variable x(inputs, /*requires_grad=*/false);
      autograd::Variable y(targets, /*requires_grad=*/false);
      autograd::Variable loss =
          nn::MaeLoss(decoder_->Forward(encoder_->Encode(x, adjacency_)), y);
      optimizer_->ZeroGrad();
      loss.Backward();
      if (options_.grad_clip > 0.0f) optimizer_->ClipGradNorm(options_.grad_clip);
      optimizer_->Step();
      loss_sum += loss.value().Item();
      ++steps;
    }
    epoch_losses.push_back(steps > 0 ? static_cast<float>(loss_sum / steps) : 0.0f);
  }
  return epoch_losses;
}

std::vector<float> DeepBaseline::TrainStageWithValidation(const data::StDataset& train,
                                                          const data::StDataset& val,
                                                          int64_t max_epochs,
                                                          int64_t patience) {
  URCL_CHECK_GT(patience, 0);
  std::vector<float> losses;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<Tensor> best_state;
  int64_t stale_epochs = 0;
  for (int64_t epoch = 0; epoch < max_epochs; ++epoch) {
    const std::vector<float> epoch_losses = TrainStage(train, 1);
    losses.push_back(epoch_losses.front());
    const double val_mae = core::ValidationMae(*this, val);
    if (val_mae < best_val) {
      best_val = val_mae;
      best_state = StateDict();
      stale_epochs = 0;
    } else if (++stale_epochs >= patience) {
      break;
    }
  }
  if (!best_state.empty()) LoadStateDict(best_state);
  return losses;
}

void DeepBaseline::SaveCheckpoint(const std::string& path) const {
  SaveTensors(StateDict(), path);
}

void DeepBaseline::LoadCheckpoint(const std::string& path) {
  LoadStateDict(LoadTensors(path));
}

Status DeepBaseline::Predict(const core::PredictRequest& request,
                             core::PredictResponse* response) const {
  return core::FinishPrediction(
      request, decoder_->InferForward(encoder_->EncodeInference(request.inputs, adjacency_)),
      response);
}

}  // namespace baselines
}  // namespace urcl
