#include "baselines/arima.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace urcl {
namespace baselines {
namespace {

// Applies one round of differencing.
std::vector<float> Difference(const std::vector<float>& series) {
  URCL_CHECK_GE(series.size(), 2u);
  std::vector<float> diff(series.size() - 1);
  for (size_t i = 1; i < series.size(); ++i) diff[i - 1] = series[i] - series[i - 1];
  return diff;
}

}  // namespace

std::vector<float> SolveLinearSystem(std::vector<std::vector<double>> a,
                                     std::vector<double> b) {
  const size_t n = b.size();
  URCL_CHECK_EQ(a.size(), n);
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    if (std::fabs(a[col][col]) < 1e-12) {
      // Singular column (e.g. constant series): zero out this unknown.
      a[col][col] = 1.0;
      b[col] = 0.0;
      for (size_t k = col + 1; k < n; ++k) a[col][k] = 0.0;
    }
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<float> x(n, 0.0f);
  for (size_t row_plus1 = n; row_plus1 > 0; --row_plus1) {
    const size_t row = row_plus1 - 1;
    double acc = b[row];
    for (size_t k = row + 1; k < n; ++k) acc -= a[row][k] * x[k];
    x[row] = static_cast<float>(acc / a[row][row]);
  }
  return x;
}

ArimaPredictor::ArimaPredictor(const ArimaOptions& options, int64_t output_steps,
                               int64_t target_channel)
    : options_(options), output_steps_(output_steps), target_channel_(target_channel) {
  URCL_CHECK_GE(options.ar_order, 1);
  URCL_CHECK_GE(options.difference, 0);
  URCL_CHECK_GT(output_steps, 0);
}

const std::vector<float>& ArimaPredictor::Coefficients(int64_t node) const {
  URCL_CHECK(node >= 0 && node < static_cast<int64_t>(coefficients_.size()));
  return coefficients_[static_cast<size_t>(node)];
}

std::vector<float> ArimaPredictor::TrainStage(const data::StDataset& train, int64_t epochs) {
  (void)epochs;  // closed-form fit
  const Tensor& series = train.series();
  const int64_t steps = series.dim(0);
  const int64_t nodes = series.dim(1);
  const int64_t p = options_.ar_order;
  coefficients_.assign(static_cast<size_t>(nodes), {});

  double total_sq_residual = 0.0;
  int64_t residual_count = 0;
  for (int64_t node = 0; node < nodes; ++node) {
    std::vector<float> values(static_cast<size_t>(steps));
    for (int64_t t = 0; t < steps; ++t) {
      values[static_cast<size_t>(t)] = series.At({t, node, target_channel_});
    }
    for (int64_t d = 0; d < options_.difference; ++d) values = Difference(values);
    const int64_t usable = static_cast<int64_t>(values.size()) - p;
    URCL_CHECK_GT(usable, p) << "series too short for AR(" << p << ") fit";

    // Least squares: z_t = c + sum_i phi_i z_{t-i}. Normal equations X^T X w = X^T z.
    const size_t dim = static_cast<size_t>(p) + 1;
    std::vector<std::vector<double>> xtx(dim, std::vector<double>(dim, 0.0));
    std::vector<double> xtz(dim, 0.0);
    for (int64_t t = p; t < static_cast<int64_t>(values.size()); ++t) {
      std::vector<double> row(dim, 1.0);  // row[0] = 1 (intercept)
      for (int64_t i = 0; i < p; ++i) {
        row[static_cast<size_t>(i) + 1] = values[static_cast<size_t>(t - 1 - i)];
      }
      const double z = values[static_cast<size_t>(t)];
      for (size_t a = 0; a < dim; ++a) {
        xtz[a] += row[a] * z;
        for (size_t b = 0; b < dim; ++b) xtx[a][b] += row[a] * row[b];
      }
    }
    // Ridge epsilon for numerical stability.
    for (size_t a = 0; a < dim; ++a) xtx[a][a] += 1e-6;
    coefficients_[static_cast<size_t>(node)] = SolveLinearSystem(xtx, xtz);

    // Report in-sample residual as the "training loss".
    const std::vector<float>& w = coefficients_[static_cast<size_t>(node)];
    for (int64_t t = p; t < static_cast<int64_t>(values.size()); ++t) {
      double pred = w[0];
      for (int64_t i = 0; i < p; ++i) {
        pred += w[static_cast<size_t>(i) + 1] * values[static_cast<size_t>(t - 1 - i)];
      }
      const double residual = values[static_cast<size_t>(t)] - pred;
      total_sq_residual += residual * residual;
      ++residual_count;
    }
  }
  const float rmse =
      residual_count > 0 ? static_cast<float>(std::sqrt(total_sq_residual / residual_count))
                         : 0.0f;
  return {rmse};
}

std::vector<float> ArimaPredictor::Forecast(const std::vector<float>& history, int64_t node,
                                            int64_t steps) const {
  const std::vector<float>& w = coefficients_[static_cast<size_t>(node)];
  const int64_t p = options_.ar_order;

  // Build the differencing stack: level values at each order.
  std::vector<std::vector<float>> levels;
  levels.push_back(history);
  for (int64_t d = 0; d < options_.difference; ++d) levels.push_back(Difference(levels.back()));

  std::vector<float> forecasts;
  for (int64_t s = 0; s < steps; ++s) {
    // AR prediction at the most-differenced level.
    std::vector<float>& z = levels.back();
    double next_z = w.empty() ? 0.0 : w[0];
    for (int64_t i = 0; i < p; ++i) {
      const int64_t idx = static_cast<int64_t>(z.size()) - 1 - i;
      const float value = idx >= 0 ? z[static_cast<size_t>(idx)] : 0.0f;
      if (!w.empty()) next_z += w[static_cast<size_t>(i) + 1] * value;
    }
    z.push_back(static_cast<float>(next_z));
    // Integrate back through the levels.
    double value = next_z;
    for (int64_t level = static_cast<int64_t>(levels.size()) - 2; level >= 0; --level) {
      value += levels[static_cast<size_t>(level)].back();
      levels[static_cast<size_t>(level)].push_back(static_cast<float>(value));
    }
    forecasts.push_back(levels.front().back());
  }
  return forecasts;
}

Status ArimaPredictor::Predict(const core::PredictRequest& request,
                               core::PredictResponse* response) const {
  const Tensor& inputs = request.inputs;
  URCL_CHECK_EQ(inputs.rank(), 4) << "expected [B, M, N, C]";
  URCL_CHECK(!coefficients_.empty()) << "ARIMA must be trained before prediction";
  const int64_t batch = inputs.dim(0);
  const int64_t steps = inputs.dim(1);
  const int64_t nodes = inputs.dim(2);
  URCL_CHECK_EQ(nodes, static_cast<int64_t>(coefficients_.size()));
  Tensor out(Shape{batch, output_steps_, nodes, 1});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t node = 0; node < nodes; ++node) {
      std::vector<float> history(static_cast<size_t>(steps));
      for (int64_t t = 0; t < steps; ++t) {
        history[static_cast<size_t>(t)] = inputs.At({b, t, node, target_channel_});
      }
      const std::vector<float> forecasts = Forecast(history, node, output_steps_);
      for (int64_t s = 0; s < output_steps_; ++s) {
        out.Set({b, s, node, 0}, forecasts[static_cast<size_t>(s)]);
      }
    }
  }
  return core::FinishPrediction(request, std::move(out), response);
}

}  // namespace baselines
}  // namespace urcl
