// Factory for every evaluated model (Sec. V-A2): ARIMA, DCRNN, STGCN, MTGNN,
// AGCRN, STGODE, GeoMAN and HistoricalAverage, all behind StPredictor so the
// benchmark harness can iterate over them uniformly.
#ifndef URCL_BASELINES_ZOO_H_
#define URCL_BASELINES_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/deep_baseline.h"
#include "core/predictor.h"
#include "graph/sensor_network.h"

namespace urcl {
namespace baselines {

struct ZooOptions {
  core::BackboneConfig encoder;  // shared encoder geometry
  DeepBaselineOptions deep;      // shared deep-training options
  int64_t target_channel = 0;    // for ARIMA / HistoricalAverage
};

// Names accepted by MakeBaseline.
std::vector<std::string> BaselineNames();

// Creates the named baseline; aborts on unknown names.
std::unique_ptr<core::StPredictor> MakeBaseline(const std::string& name,
                                                const ZooOptions& options,
                                                const graph::SensorNetwork& network);

}  // namespace baselines
}  // namespace urcl

#endif  // URCL_BASELINES_ZOO_H_
