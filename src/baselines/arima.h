// Classic per-node ARIMA(p, d, 0) fitted by least squares — the statistical
// baseline of Sec. V-A2. Each sensor gets its own AR coefficients on the
// (optionally differenced) target-channel series; it sees no spatial
// structure, which is exactly why it trails the graph models.
#ifndef URCL_BASELINES_ARIMA_H_
#define URCL_BASELINES_ARIMA_H_

#include <string>
#include <vector>

#include "core/predictor.h"

namespace urcl {
namespace baselines {

struct ArimaOptions {
  int64_t ar_order = 4;   // p
  int64_t difference = 1; // d
};

class ArimaPredictor : public core::StPredictor {
 public:
  ArimaPredictor(const ArimaOptions& options, int64_t output_steps, int64_t target_channel);

  std::string name() const override { return "ARIMA"; }

  // "Training" = refitting the per-node AR coefficients on this stage.
  std::vector<float> TrainStage(const data::StDataset& train, int64_t epochs) override;

  Status Predict(const core::PredictRequest& request,
                 core::PredictResponse* response) const override;
  using core::StPredictor::Predict;  // re-expose the deprecated Tensor shim

  // Fitted coefficients for `node`: [c, phi_1..phi_p]; empty before training.
  const std::vector<float>& Coefficients(int64_t node) const;

 private:
  // Forecasts `steps` values beyond `history` (undifferenced target values).
  std::vector<float> Forecast(const std::vector<float>& history, int64_t node,
                              int64_t steps) const;

  ArimaOptions options_;
  int64_t output_steps_;
  int64_t target_channel_;
  std::vector<std::vector<float>> coefficients_;  // per node
};

// Solves the dense linear system A x = b (Gaussian elimination with partial
// pivoting). Exposed for tests.
std::vector<float> SolveLinearSystem(std::vector<std::vector<double>> a,
                                     std::vector<double> b);

}  // namespace baselines
}  // namespace urcl

#endif  // URCL_BASELINES_ARIMA_H_
