#include "baselines/zoo.h"

#include "baselines/agcrn.h"
#include "baselines/arima.h"
#include "baselines/fclstm.h"
#include "baselines/historical_average.h"
#include "baselines/stgcn.h"
#include "baselines/stgode.h"
#include "common/check.h"
#include "core/dcrnn_backbone.h"
#include "core/geoman_backbone.h"
#include "core/stencoder.h"

namespace urcl {
namespace baselines {

std::vector<std::string> BaselineNames() {
  return {"ARIMA", "DCRNN", "STGCN", "MTGNN", "AGCRN", "STGODE", "GeoMAN",
          "FC-LSTM", "HistoricalAverage"};
}

std::unique_ptr<core::StPredictor> MakeBaseline(const std::string& name,
                                                const ZooOptions& options,
                                                const graph::SensorNetwork& network) {
  Rng rng(options.deep.seed);
  auto deep = [&](std::unique_ptr<core::StBackbone> encoder) {
    return std::make_unique<DeepBaseline>(name, std::move(encoder), options.deep, network, rng);
  };

  if (name == "ARIMA") {
    return std::make_unique<ArimaPredictor>(ArimaOptions{}, options.deep.output_steps,
                                            options.target_channel);
  }
  if (name == "HistoricalAverage") {
    return std::make_unique<HistoricalAverage>(options.deep.output_steps,
                                               options.target_channel);
  }
  if (name == "DCRNN") {
    return deep(std::make_unique<core::DcrnnEncoder>(options.encoder, rng));
  }
  if (name == "GeoMAN") {
    return deep(std::make_unique<core::GeomanEncoder>(options.encoder, rng));
  }
  if (name == "STGCN") {
    return deep(std::make_unique<StgcnEncoder>(options.encoder, /*cheb_order=*/2, rng));
  }
  if (name == "MTGNN") {
    // MTGNN's defining idea: the graph is learned, not given.
    core::BackboneConfig config = options.encoder;
    config.use_static_supports = false;
    config.use_adaptive_adjacency = true;
    return deep(std::make_unique<core::GraphWaveNetEncoder>(config, rng));
  }
  if (name == "AGCRN") {
    return deep(std::make_unique<AgcrnEncoder>(options.encoder, rng));
  }
  if (name == "FC-LSTM") {
    return deep(std::make_unique<FcLstmEncoder>(options.encoder, rng));
  }
  if (name == "STGODE") {
    return deep(std::make_unique<StgodeEncoder>(options.encoder, /*ode_steps=*/4,
                                                /*step_size=*/0.25f, rng));
  }
  URCL_CHECK(false) << "unknown baseline: " << name;
  return nullptr;
}

}  // namespace baselines
}  // namespace urcl
