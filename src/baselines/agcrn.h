// AGCRN-style encoder: a GRU whose gates are graph convolutions over a
// fully-learned (node-embedding) adjacency — no predefined graph.
#ifndef URCL_BASELINES_AGCRN_H_
#define URCL_BASELINES_AGCRN_H_

#include <memory>

#include "core/backbone.h"
#include "nn/gcn.h"
#include "nn/linear.h"

namespace urcl {
namespace baselines {

using autograd::Variable;

class AgcrnEncoder : public core::StBackbone {
 public:
  AgcrnEncoder(const core::BackboneConfig& config, Rng& rng);

  Variable Encode(const Variable& observations, const Tensor& adjacency) const override;

  int64_t latent_channels() const override { return config_.latent_channels; }
  int64_t latent_time() const override { return 1; }
  std::string name() const override { return "AGCRN"; }

 private:
  // One adaptive graph convolution: Linear([x, A_adp x]) over node features.
  Variable AdaptiveConv(const nn::Linear& projection, const Variable& x,
                        const Variable& adaptive) const;

  core::BackboneConfig config_;
  std::unique_ptr<nn::AdaptiveAdjacency> adaptive_;
  std::unique_ptr<nn::Linear> update_gate_;
  std::unique_ptr<nn::Linear> reset_gate_;
  std::unique_ptr<nn::Linear> candidate_;
  std::unique_ptr<nn::Linear> output_projection_;
};

}  // namespace baselines
}  // namespace urcl

#endif  // URCL_BASELINES_AGCRN_H_
