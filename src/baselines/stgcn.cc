#include "baselines/stgcn.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "graph/transition.h"

namespace urcl {
namespace baselines {

namespace ag = ::urcl::autograd;

StgcnEncoder::StgcnEncoder(const core::BackboneConfig& config, int64_t cheb_order, Rng& rng)
    : config_(config), cheb_order_(cheb_order) {
  URCL_CHECK_GE(cheb_order, 1);
  constexpr int64_t kNumBlocks = 2;
  URCL_CHECK_GT(config.input_steps, 2 * kNumBlocks)
      << "input window too short for two ST-Conv blocks";
  input_projection_ =
      std::make_unique<nn::ChannelLinear>(config.in_channels, config.hidden_channels, rng);
  RegisterChild("input_projection", input_projection_.get());
  for (int64_t block = 0; block < kNumBlocks; ++block) {
    pre_tcn_.push_back(std::make_unique<nn::GatedTcn>(config.hidden_channels,
                                                      config.hidden_channels, 2, 1, rng));
    RegisterChild("pre_tcn" + std::to_string(block), pre_tcn_.back().get());
    cheb_gcn_.push_back(std::make_unique<nn::DiffusionGcn>(
        config.hidden_channels, config.hidden_channels, /*num_static_supports=*/cheb_order,
        /*use_adaptive=*/false, /*max_diffusion_step=*/1, rng));
    RegisterChild("cheb_gcn" + std::to_string(block), cheb_gcn_.back().get());
    post_tcn_.push_back(std::make_unique<nn::GatedTcn>(config.hidden_channels,
                                                       config.hidden_channels, 2, 1, rng));
    RegisterChild("post_tcn" + std::to_string(block), post_tcn_.back().get());
  }
  latent_time_ = config.input_steps - 2 * kNumBlocks;
  output_projection_ =
      std::make_unique<nn::ChannelLinear>(config.hidden_channels, config.latent_channels, rng);
  RegisterChild("output_projection", output_projection_.get());
}

Variable StgcnEncoder::Encode(const Variable& observations, const Tensor& adjacency) const {
  URCL_CHECK_EQ(observations.shape().rank(), 4) << "expected [B, M, N, C]";
  const std::vector<Tensor> supports = graph::ChebyshevSupports(adjacency, cheb_order_);
  Variable h = ag::Transpose(observations, {0, 3, 2, 1});  // -> [B, C, N, M]
  h = input_projection_->Forward(h);
  for (size_t block = 0; block < pre_tcn_.size(); ++block) {
    h = pre_tcn_[block]->Forward(h);
    h = ag::Relu(cheb_gcn_[block]->Forward(h, supports, Variable()));
    h = post_tcn_[block]->Forward(h);
  }
  return output_projection_->Forward(ag::Relu(h));
}

}  // namespace baselines
}  // namespace urcl
