#include "baselines/stgode.h"

#include "autograd/ops.h"
#include "common/check.h"
#include "graph/transition.h"

namespace urcl {
namespace baselines {

namespace ag = ::urcl::autograd;

StgodeEncoder::StgodeEncoder(const core::BackboneConfig& config, int64_t ode_steps,
                             float step_size, Rng& rng)
    : config_(config), ode_steps_(ode_steps), step_size_(step_size) {
  URCL_CHECK_GE(ode_steps, 1);
  URCL_CHECK(step_size > 0.0f && step_size <= 1.0f);
  URCL_CHECK_GT(config.input_steps, 4) << "input window too short for the TCN pair";
  input_projection_ =
      std::make_unique<nn::ChannelLinear>(config.in_channels, config.hidden_channels, rng);
  RegisterChild("input_projection", input_projection_.get());
  pre_tcn_ = std::make_unique<nn::GatedTcn>(config.hidden_channels, config.hidden_channels, 2,
                                            1, rng);
  RegisterChild("pre_tcn", pre_tcn_.get());
  ode_gcn_ = std::make_unique<nn::DiffusionGcn>(
      config.hidden_channels, config.hidden_channels,
      /*num_static_supports=*/config.directed_graph ? 2 : 1,
      /*use_adaptive=*/false, /*max_diffusion_step=*/1, rng);
  RegisterChild("ode_gcn", ode_gcn_.get());
  post_tcn_ = std::make_unique<nn::GatedTcn>(config.hidden_channels, config.hidden_channels, 2,
                                             2, rng);
  RegisterChild("post_tcn", post_tcn_.get());
  latent_time_ = config.input_steps - 1 - 2;  // pre (1 step) + post (dilation 2)
  output_projection_ =
      std::make_unique<nn::ChannelLinear>(config.hidden_channels, config.latent_channels, rng);
  RegisterChild("output_projection", output_projection_.get());
}

Variable StgodeEncoder::Encode(const Variable& observations, const Tensor& adjacency) const {
  URCL_CHECK_EQ(observations.shape().rank(), 4) << "expected [B, M, N, C]";
  const std::vector<Tensor> supports =
      graph::BuildSupportsDense(adjacency, config_.directed_graph);
  Variable h = ag::Transpose(observations, {0, 3, 2, 1});  // -> [B, C, N, M]
  h = input_projection_->Forward(h);
  h = pre_tcn_->Forward(h);

  // Euler integration of dh/dt = GCN(h) + h0 - h.
  const Variable h0 = h;
  for (int64_t step = 0; step < ode_steps_; ++step) {
    Variable derivative =
        ag::Add(ag::Sub(ode_gcn_->Forward(h, supports, Variable()), h), h0);
    h = ag::Add(h, ag::MulScalar(derivative, step_size_));
  }

  h = post_tcn_->Forward(h);
  return output_projection_->Forward(ag::Relu(h));
}

}  // namespace baselines
}  // namespace urcl
