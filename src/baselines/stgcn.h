// STGCN-style encoder: the "sandwich" ST-Conv block — temporal gated conv,
// Chebyshev graph conv, temporal gated conv — stacked twice.
#ifndef URCL_BASELINES_STGCN_H_
#define URCL_BASELINES_STGCN_H_

#include <memory>
#include <vector>

#include "core/backbone.h"
#include "nn/gcn.h"
#include "nn/linear.h"
#include "nn/tcn.h"

namespace urcl {
namespace baselines {

using autograd::Variable;

class StgcnEncoder : public core::StBackbone {
 public:
  StgcnEncoder(const core::BackboneConfig& config, int64_t cheb_order, Rng& rng);

  Variable Encode(const Variable& observations, const Tensor& adjacency) const override;

  int64_t latent_channels() const override { return config_.latent_channels; }
  int64_t latent_time() const override { return latent_time_; }
  std::string name() const override { return "STGCN"; }

 private:
  core::BackboneConfig config_;
  int64_t cheb_order_;
  int64_t latent_time_ = 0;
  std::unique_ptr<nn::ChannelLinear> input_projection_;
  std::vector<std::unique_ptr<nn::GatedTcn>> pre_tcn_;
  std::vector<std::unique_ptr<nn::DiffusionGcn>> cheb_gcn_;
  std::vector<std::unique_ptr<nn::GatedTcn>> post_tcn_;
  std::unique_ptr<nn::ChannelLinear> output_projection_;
};

}  // namespace baselines
}  // namespace urcl

#endif  // URCL_BASELINES_STGCN_H_
