#include "baselines/fclstm.h"

#include "autograd/ops.h"
#include "common/check.h"

namespace urcl {
namespace baselines {

namespace ag = ::urcl::autograd;
using autograd::Variable;

FcLstmEncoder::FcLstmEncoder(const core::BackboneConfig& config, Rng& rng)
    : config_(config) {
  const int64_t h = config.hidden_channels;
  gates_ = std::make_unique<nn::Linear>(config.in_channels + h, 4 * h, rng);
  RegisterChild("gates", gates_.get());
  output_projection_ = std::make_unique<nn::Linear>(h, config.latent_channels, rng);
  RegisterChild("output_projection", output_projection_.get());
}

Variable FcLstmEncoder::Encode(const Variable& observations, const Tensor& adjacency) const {
  URCL_CHECK_EQ(observations.shape().rank(), 4) << "expected [B, M, N, C]";
  (void)adjacency;  // graph-blind by design
  const int64_t batch = observations.shape().dim(0);
  const int64_t steps = observations.shape().dim(1);
  const int64_t nodes = observations.shape().dim(2);
  const int64_t channels = observations.shape().dim(3);
  URCL_CHECK_EQ(nodes, config_.num_nodes);
  const int64_t h = config_.hidden_channels;

  Variable hidden(Tensor::Zeros(Shape{batch, nodes, h}), /*requires_grad=*/false);
  Variable cell(Tensor::Zeros(Shape{batch, nodes, h}), /*requires_grad=*/false);
  for (int64_t t = 0; t < steps; ++t) {
    Variable x_t = ag::Reshape(
        ag::Slice(observations, {0, t, 0, 0}, {batch, 1, nodes, channels}),
        Shape{batch, nodes, channels});
    Variable fused = gates_->Forward(ag::Concat({x_t, hidden}, -1));  // [B, N, 4H]
    Variable i = ag::Sigmoid(ag::Slice(fused, {0, 0, 0}, {batch, nodes, h}));
    Variable f = ag::Sigmoid(ag::Slice(fused, {0, 0, h}, {batch, nodes, h}));
    Variable g = ag::Tanh(ag::Slice(fused, {0, 0, 2 * h}, {batch, nodes, h}));
    Variable o = ag::Sigmoid(ag::Slice(fused, {0, 0, 3 * h}, {batch, nodes, h}));
    cell = ag::Add(ag::Mul(f, cell), ag::Mul(i, g));
    hidden = ag::Mul(o, ag::Tanh(cell));
  }

  Variable latent = output_projection_->Forward(hidden);  // [B, N, L]
  latent = ag::Transpose(latent, {0, 2, 1});
  return ag::Reshape(latent, Shape{batch, config_.latent_channels, nodes, 1});
}

}  // namespace baselines
}  // namespace urcl
