// FC-LSTM-style encoder: a per-node LSTM with fully-connected gates and no
// graph structure (the classic sequence baseline the DCRNN line of work
// compares against). Included to quantify what the spatial modules buy.
#ifndef URCL_BASELINES_FCLSTM_H_
#define URCL_BASELINES_FCLSTM_H_

#include <memory>

#include "core/backbone.h"
#include "nn/linear.h"

namespace urcl {
namespace baselines {

class FcLstmEncoder : public core::StBackbone {
 public:
  FcLstmEncoder(const core::BackboneConfig& config, Rng& rng);

  autograd::Variable Encode(const autograd::Variable& observations,
                            const Tensor& adjacency) const override;

  int64_t latent_channels() const override { return config_.latent_channels; }
  int64_t latent_time() const override { return 1; }
  std::string name() const override { return "FC-LSTM"; }

 private:
  core::BackboneConfig config_;
  // One fused gate projection: [x_t, h] -> 4H (input, forget, cell, output).
  std::unique_ptr<nn::Linear> gates_;
  std::unique_ptr<nn::Linear> output_projection_;
};

}  // namespace baselines
}  // namespace urcl

#endif  // URCL_BASELINES_FCLSTM_H_
