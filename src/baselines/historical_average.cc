#include "baselines/historical_average.h"

#include <utility>

#include "common/check.h"

namespace urcl {
namespace baselines {

HistoricalAverage::HistoricalAverage(int64_t output_steps, int64_t target_channel)
    : output_steps_(output_steps), target_channel_(target_channel) {
  URCL_CHECK_GT(output_steps, 0);
  URCL_CHECK_GE(target_channel, 0);
}

std::vector<float> HistoricalAverage::TrainStage(const data::StDataset& train, int64_t epochs) {
  (void)train;
  (void)epochs;  // nothing to learn
  return {0.0f};
}

Status HistoricalAverage::Predict(const core::PredictRequest& request,
                                  core::PredictResponse* response) const {
  const Tensor& inputs = request.inputs;
  URCL_CHECK_EQ(inputs.rank(), 4) << "expected [B, M, N, C]";
  const int64_t batch = inputs.dim(0);
  const int64_t steps = inputs.dim(1);
  const int64_t nodes = inputs.dim(2);
  URCL_CHECK_LT(target_channel_, inputs.dim(3));
  Tensor out(Shape{batch, output_steps_, nodes, 1});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t node = 0; node < nodes; ++node) {
      float mean = 0.0f;
      for (int64_t t = 0; t < steps; ++t) mean += inputs.At({b, t, node, target_channel_});
      mean /= static_cast<float>(steps);
      for (int64_t s = 0; s < output_steps_; ++s) out.Set({b, s, node, 0}, mean);
    }
  }
  return core::FinishPrediction(request, std::move(out), response);
}

}  // namespace baselines
}  // namespace urcl
