#include "obs/learning.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace urcl {
namespace obs {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

}  // namespace

void LearningTelemetry::Record(int64_t trained_stage, int64_t eval_stage, double metric) {
  matrix_[trained_stage][eval_stage] = metric;
  if (trained_stage > latest_trained_) latest_trained_ = trained_stage;
}

double LearningTelemetry::Diagonal(int64_t stage) const {
  const auto row = matrix_.find(stage);
  if (row == matrix_.end()) return kNan;
  const auto cell = row->second.find(stage);
  return cell != row->second.end() ? cell->second : kNan;
}

double LearningTelemetry::Latest(int64_t stage) const {
  const auto row = matrix_.find(latest_trained_);
  if (row == matrix_.end()) return kNan;
  const auto cell = row->second.find(stage);
  return cell != row->second.end() ? cell->second : kNan;
}

double LearningTelemetry::Forgetting(int64_t stage) const {
  const double first = Diagonal(stage);
  const double latest = Latest(stage);
  if (std::isnan(first) || std::isnan(latest)) return kNan;
  return latest - first;
}

double LearningTelemetry::MeanForgetting() const {
  double sum = 0.0;
  int64_t n = 0;
  for (int64_t s = 0; s < latest_trained_; ++s) {
    const double f = Forgetting(s);
    if (std::isnan(f)) continue;
    sum += f;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

void LearningTelemetry::ExportGauges() const {
  if (!MetricsEnabled()) return;
  auto& registry = MetricsRegistry::Get();
  for (int64_t s = 0; s < latest_trained_; ++s) {
    const double f = Forgetting(s);
    if (std::isnan(f)) continue;
    registry
        .GetGauge(LabeledName("urcl.learn.forgetting", {{"stage", std::to_string(s)}}))
        .Set(f);
  }
  registry.GetGauge("urcl.learn.backward_transfer").Set(BackwardTransfer());
  registry.GetGauge("urcl.learn.stages_trained")
      .Set(static_cast<double>(latest_trained_ + 1));
}

std::string LearningTelemetry::ToJson() const {
  std::ostringstream out;
  out << "{\"stages\":" << (latest_trained_ + 1) << ",\"matrix\":{";
  bool first_row = true;
  for (const auto& [trained, row] : matrix_) {
    if (!first_row) out << ",";
    first_row = false;
    out << JsonString(std::to_string(trained)) << ":{";
    bool first_cell = true;
    for (const auto& [eval, metric] : row) {
      if (!first_cell) out << ",";
      first_cell = false;
      out << JsonString(std::to_string(eval)) << ":" << JsonNumber(metric);
    }
    out << "}";
  }
  out << "},\"forgetting\":{";
  bool first = true;
  for (int64_t s = 0; s < latest_trained_; ++s) {
    const double f = Forgetting(s);
    if (std::isnan(f)) continue;
    if (!first) out << ",";
    first = false;
    out << JsonString(std::to_string(s)) << ":" << JsonNumber(f);
  }
  out << "},\"mean_forgetting\":" << JsonNumber(MeanForgetting())
      << ",\"backward_transfer\":" << JsonNumber(BackwardTransfer()) << "}";
  return out.str();
}

Status LearningTelemetry::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Error("cannot open learning telemetry file: " + path);
  out << ToJson() << "\n";
  out.flush();
  if (!out) return Status::Error("failed writing learning telemetry file: " + path);
  return Status::Ok();
}

}  // namespace obs
}  // namespace urcl
