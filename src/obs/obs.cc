#include "obs/obs.h"

#include <cstdlib>
#include <fstream>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace urcl {
namespace obs {
namespace {

struct OutputPaths {
  Mutex mu;
  std::string metrics URCL_GUARDED_BY(mu);
  std::string trace URCL_GUARDED_BY(mu);
  std::string profile URCL_GUARDED_BY(mu);
};

OutputPaths& Paths() {
  static OutputPaths* paths = new OutputPaths();
  return *paths;
}

void SetFlag(uint32_t bit, bool enabled) {
  if (enabled) {
    internal::g_flags.fetch_or(bit, std::memory_order_relaxed);
  } else {
    internal::g_flags.fetch_and(~bit, std::memory_order_relaxed);
  }
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Error("cannot open output file: " + path);
  out << content;
  out.flush();
  if (!out) return Status::Error("failed writing output file: " + path);
  return Status::Ok();
}

}  // namespace

void Configure(const ObsConfig& config) {
  SetFlag(internal::kMetricsBit, config.metrics);
  SetFlag(internal::kTraceBit, config.trace);
  SetFlag(internal::kProfilerBit, config.profiler);
}

ObsConfig Current() {
  const uint32_t flags = internal::g_flags.load(std::memory_order_relaxed);
  ObsConfig config;
  config.metrics = (flags & internal::kMetricsBit) != 0;
  config.trace = (flags & internal::kTraceBit) != 0;
  config.profiler = (flags & internal::kProfilerBit) != 0;
  return config;
}

void InitFromEnv() {
  const char* env = std::getenv("URCL_OBS");
  if (env == nullptr) return;
  const std::string value(env);
  if (value == "0" || value == "off" || value == "OFF" || value == "false" ||
      value.empty()) {
    Configure(ObsConfig{});
    return;
  }
  if (value == "1" || value == "on" || value == "all" || value == "true") {
    Configure(ObsConfig{true, true, true});
    return;
  }
  ObsConfig config;
  size_t start = 0;
  while (start <= value.size()) {
    size_t comma = value.find(',', start);
    if (comma == std::string::npos) comma = value.size();
    const std::string token = value.substr(start, comma - start);
    if (token == "metrics") config.metrics = true;
    if (token == "trace") config.trace = true;
    if (token == "profile" || token == "profiler") config.profiler = true;
    start = comma + 1;
  }
  Configure(config);
}

void SetMetricsOutPath(std::string path) {
  const bool enable = !path.empty();
  {
    MutexLock lock(Paths().mu);
    Paths().metrics = std::move(path);
  }
  if (enable) SetFlag(internal::kMetricsBit, true);
}

void SetTraceOutPath(std::string path) {
  const bool enable = !path.empty();
  {
    MutexLock lock(Paths().mu);
    Paths().trace = std::move(path);
  }
  if (enable) SetFlag(internal::kTraceBit, true);
}

void SetProfileOutPath(std::string path) {
  const bool enable = !path.empty();
  {
    MutexLock lock(Paths().mu);
    Paths().profile = std::move(path);
  }
  if (enable) SetFlag(internal::kProfilerBit, true);
}

std::vector<std::string> WriteConfiguredOutputs(std::vector<std::string>* errors) {
  std::string metrics_path;
  std::string trace_path;
  std::string profile_path;
  {
    MutexLock lock(Paths().mu);
    metrics_path = Paths().metrics;
    trace_path = Paths().trace;
    profile_path = Paths().profile;
  }
  std::vector<std::string> written;
  const auto write = [&](const std::string& path, const std::string& content) {
    if (path.empty()) return;
    const Status status = WriteStringToFile(path, content);
    if (status.ok()) {
      written.push_back(path);
    } else if (errors != nullptr) {
      errors->push_back(status.message());
    }
  };
  write(metrics_path, MetricsRegistry::Get().ToPrometheus());
  write(trace_path, ChromeTraceJson());
  write(profile_path, ProfilerJson());
  return written;
}

}  // namespace obs
}  // namespace urcl
