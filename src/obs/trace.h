// Scoped tracing spans recorded into per-thread ring buffers and exported as
// Chrome trace_event JSON (open chrome://tracing or https://ui.perfetto.dev
// and load the file).
//
//   URCL_TRACE_SCOPE("train_step");        // span = enclosing C++ scope
//   URCL_TRACE_SCOPE("stage", stage_idx);  // named "stage_3"
//
// Design:
//  - each thread owns a fixed-capacity ring of completed spans (oldest
//    events are overwritten when a thread outruns the ring; the drop count
//    is exported so truncated traces are detectable);
//  - a span records nothing at open; the {name, begin, end} triple is
//    written once at close, so disabled-mode cost is one relaxed atomic
//    load and an untaken branch;
//  - rings are registered globally (shared_ptr, so a finished thread's
//    events survive it) and drained by ChromeTraceJson(); per-ring mutexes
//    make the hammering-writers-vs-exporter race TSan-clean;
//  - timestamps come from MonotonicNowNs() (common/stopwatch.h), the same
//    clock the Fig. 7 efficiency experiments use, normalized to the first
//    ring registration so trace timestamps start near zero.
#ifndef URCL_OBS_TRACE_H_
#define URCL_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/stopwatch.h"
#include "obs/obs.h"

namespace urcl {
namespace obs {

namespace internal {

inline constexpr size_t kTraceNameCapacity = 48;
struct TraceEvent {
  char name[kTraceNameCapacity];
  int64_t begin_ns;
  int64_t end_ns;
  uint64_t flow_id;  // request trace ID active at close; 0 = none
};

// Appends one completed span to the calling thread's ring, stamped with the
// thread's current trace ID (CurrentTraceId()).
void RecordSpan(const char* name, int64_t begin_ns, int64_t end_ns);

}  // namespace internal

// --- Request-scoped causal tracing -----------------------------------------
//
// A trace ID is a nonzero 64-bit token minted once per request (or supplied
// by the caller) and carried across the stages that answer it. While a
// TraceFlow is on a thread's stack, every span that closes on that thread is
// stamped with the ID, and ChromeTraceJson() links the stamped spans with
// Perfetto flow arrows — so one slow p99 request can be followed through
// admission, executor and response stamping end to end.

// Mints a process-unique nonzero trace ID (mixed counter; no clock or global
// RNG draw, so IDs are cheap and deterministic per process order).
uint64_t MintTraceId();

// The trace ID bound to the calling thread (0 = none).
uint64_t CurrentTraceId();

// RAII binding of a trace ID to the calling thread. Nests: the previous
// binding is restored on destruction.
class TraceFlow {
 public:
  explicit TraceFlow(uint64_t trace_id);
  ~TraceFlow();

  TraceFlow(const TraceFlow&) = delete;
  TraceFlow& operator=(const TraceFlow&) = delete;

 private:
  uint64_t saved_;
};

// RAII span. Construction with tracing disabled records nothing (and the
// destructor is a single branch).
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (TraceEnabled()) {
      SetName(name, -1);
      begin_ns_ = MonotonicNowNs();
    }
  }
  // Span named "<name>_<index>" (e.g. URCL_TRACE_SCOPE("epoch", 2)).
  TraceScope(const char* name, int64_t index) {
    if (TraceEnabled()) {
      SetName(name, index);
      begin_ns_ = MonotonicNowNs();
    }
  }
  ~TraceScope() {
    if (begin_ns_ >= 0) internal::RecordSpan(name_, begin_ns_, MonotonicNowNs());
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  void SetName(const char* name, int64_t index);

  int64_t begin_ns_ = -1;  // -1 = disabled at construction
  char name_[internal::kTraceNameCapacity];
};

#define URCL_OBS_CONCAT_INNER(a, b) a##b
#define URCL_OBS_CONCAT(a, b) URCL_OBS_CONCAT_INNER(a, b)
#define URCL_TRACE_SCOPE(...) \
  ::urcl::obs::TraceScope URCL_OBS_CONCAT(urcl_trace_scope_, __LINE__)(__VA_ARGS__)

// Names the calling thread in exported traces (e.g. "worker-2"); threads
// that never call this appear as "thread-<tid>".
void SetThreadName(const std::string& name);

// Per-thread ring capacity in events; affects rings created afterwards.
// Default 65536. Exposed for tests exercising overflow.
void SetTraceRingCapacity(size_t events);

// Serializes every ring into Chrome trace_event JSON ("X" complete events,
// microsecond timestamps, one tid per registered thread, plus thread_name
// metadata and per-thread dropped-event counts in "otherData").
std::string ChromeTraceJson();
Status WriteChromeTrace(const std::string& path);

// Total completed spans currently buffered across all rings.
size_t TraceEventCount();
// Empties every ring (capacity and thread registrations are kept).
void ClearTrace();

}  // namespace obs
}  // namespace urcl

#endif  // URCL_OBS_TRACE_H_
