// Black-box flight recorder: an always-on, lock-striped bounded ring of
// structured lifecycle events (snapshot publish/admit/quarantine, hot-swap,
// rollback, health transitions, plan compile/fallback, checkpoint write,
// drift trigger, non-finite quarantine, deadline shed, lame-duck, fatal
// abort). Unlike the metrics registry it is NOT gated on obs::MetricsEnabled:
// the events it records are rare (per-publish / per-incident, never
// per-element), so "always on" costs a stripe-local mutex acquire and a
// fixed-size record copy — and the recorder is exactly what must exist when
// an incident happens on a process that was not started with URCL_OBS=1.
//
// Records are pre-formatted and fixed-size (no allocation on the record
// path): a monotone sequence number, a monotonic timestamp, the request
// trace ID active on the recording thread (obs::CurrentTraceId — links an
// event to the query that triggered it), two type-specific int64 operands
// and a truncating detail string.
//
// Dumps: JSONL, one event per line, oldest first. The serving layer dumps
// automatically on rollback, LAME_DUCK entry and fatal abort (URCL_CHECK
// failure); tools/obs/urcl_blackbox filters and pretty-prints dumps offline.
// The dump directory comes from SetDumpDir or the URCL_BLACKBOX_DIR env var
// (default: current directory); auto-dump filenames are deterministic per
// reason ("urcl_blackbox.<reason>.jsonl") so forensics and tests know where
// to look.
#ifndef URCL_OBS_FLIGHT_RECORDER_H_
#define URCL_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace urcl {
namespace obs {

enum class FlightEventType : uint8_t {
  kSnapshotPublish = 0,   // a: version, b: stage (trainer side)
  kSnapshotAdmit = 1,     // a: version (passed the admission gate)
  kSnapshotQuarantine = 2,  // detail: admission failure message
  kHotSwap = 3,           // a: new live version
  kRollback = 4,          // a: bad version, b: restored version (-1 = none)
  kHealthTransition = 5,  // a: previous HealthState, b: new HealthState
  kPlanCompile = 6,       // a: version; detail: shape key
  kPlanFallback = 7,      // a: version; detail: why the plan path was skipped
  kCheckpointWrite = 8,   // a: stage, b: step; detail: path tail
  kDriftTrigger = 9,      // a: samples seen at the alarm
  kNonFiniteQuarantine = 10,  // a: version/stage, b: step; detail: which gate
  kDeadlineShed = 11,     // a: estimated ns, b: deadline ns
  kLameDuck = 12,         // terminal drain began
  kFatalAbort = 13,       // detail: URCL_CHECK failure message
};

// Stable lowercase name used in dumps ("rollback", "hot_swap", ...).
const char* FlightEventTypeName(FlightEventType type);

struct FlightEvent {
  uint64_t seq = 0;      // global order across stripes (monotone)
  int64_t ts_ns = 0;     // MonotonicNowNs at record time
  uint64_t trace_id = 0; // requester's trace ID; 0 = not request-scoped
  FlightEventType type = FlightEventType::kFatalAbort;
  int64_t a = 0;         // type-specific operands (see the enum)
  int64_t b = 0;
  char detail[56] = {0}; // truncating copy, always NUL-terminated
};

class FlightRecorder {
 public:
  // Process-wide instance (leaked). First use installs the fatal-abort hook
  // (common/check.h) that records kFatalAbort and dumps before abort().
  static FlightRecorder& Get();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Records one event into the calling thread's stripe. `detail` may be
  // nullptr; longer strings are truncated to the record's fixed field.
  void Record(FlightEventType type, int64_t a = 0, int64_t b = 0,
              const char* detail = nullptr);

  // All buffered events, oldest first (sorted by sequence number).
  std::vector<FlightEvent> Snapshot() const;

  // One JSON object per line:
  // {"seq":..,"ts_ns":..,"type":"rollback","trace_id":"0x..","a":..,"b":..,
  //  "detail":".."}
  std::string ToJsonl() const;
  Status DumpToFile(const std::string& path) const;

  // Writes "<dump_dir>/urcl_blackbox.<reason>.jsonl" (overwriting: the
  // latest incident of each kind wins). Returns the path written, or an
  // empty string when the write failed (auto-dump must never take the
  // process down harder than the incident already has).
  std::string AutoDump(const char* reason);

  // Overrides the dump directory (tests, embedding servers). Empty resets to
  // the URCL_BLACKBOX_DIR env var / current directory default.
  void SetDumpDir(std::string dir);

  void Clear();                 // empties every stripe (capacity kept)
  uint64_t events_recorded() const;  // total ever recorded (incl. overwritten)
  uint64_t dumps_written() const;
  std::string last_dump_path() const;

 private:
  FlightRecorder();
  struct Impl;
  Impl* impl_;  // leaked with the singleton
};

// Convenience wrapper: FlightRecorder::Get().Record(...), trace ID picked up
// from the calling thread automatically inside Record.
inline void RecordFlightEvent(FlightEventType type, int64_t a = 0, int64_t b = 0,
                              const char* detail = nullptr) {
  FlightRecorder::Get().Record(type, a, b, detail);
}

}  // namespace obs
}  // namespace urcl

#endif  // URCL_OBS_FLIGHT_RECORDER_H_
