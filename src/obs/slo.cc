#include "obs/slo.h"

#include <algorithm>

#include "obs/obs.h"

namespace urcl {
namespace obs {
namespace {

// obs sits below common/check.cc in the link order, so invalid configs are
// clamped into range instead of aborting (a monitoring component must not be
// able to take the process down anyway).
double ClampTarget(double target) {
  if (!(target > 0.0)) return 0.5;
  if (!(target < 1.0)) return 1.0 - 1e-9;
  return target;
}

}  // namespace

SloMonitor::SloMonitor(SloConfig config) : config_(std::move(config)) {
  config_.availability_target = ClampTarget(config_.availability_target);
  config_.latency_target = ClampTarget(config_.latency_target);
  config_.windows_ns.erase(
      std::remove_if(config_.windows_ns.begin(), config_.windows_ns.end(),
                     [](int64_t w) { return w <= 0; }),
      config_.windows_ns.end());
  if (config_.windows_ns.empty()) {
    config_.windows_ns = SloConfig().windows_ns;
  }
  std::sort(config_.windows_ns.begin(), config_.windows_ns.end());
}

void SloMonitor::Tick(const Sample& sample) {
  MutexLock lock(mu_);
  samples_.push_back(sample);
  // Keep a little more than the longest window so the oldest in-window
  // sample always has a predecessor to delta against.
  const int64_t horizon_ns = 2 * config_.windows_ns.back();
  while (samples_.size() > 2 &&
         sample.ts_ns - samples_.front().ts_ns > horizon_ns) {
    samples_.pop_front();
  }
}

void SloMonitor::TickFromRegistry(int64_t now_ns) {
  auto& registry = MetricsRegistry::Get();
  Sample sample;
  sample.ts_ns = now_ns;
  sample.total = registry.GetCounter(config_.total_counter).Value();
  for (const std::string& name : config_.error_counters) {
    sample.errors += registry.GetCounter(name).Value();
  }
  const Histogram::Snapshot lat =
      registry.GetHistogram(config_.latency_histogram, config_.latency_bounds).Snap();
  sample.lat_total = lat.count;
  uint64_t under = 0;
  for (size_t i = 0; i < lat.bounds.size(); ++i) {
    if (lat.bounds[i] <= config_.latency_threshold_ns) under += lat.bucket_counts[i];
  }
  sample.lat_slow = lat.count - under;
  Tick(sample);
}

std::vector<SloMonitor::WindowBurn> SloMonitor::Burn() const {
  MutexLock lock(mu_);
  std::vector<WindowBurn> burns;
  burns.reserve(config_.windows_ns.size());
  if (samples_.empty()) {
    for (const int64_t w : config_.windows_ns) {
      WindowBurn burn;
      burn.window_ns = w;
      burns.push_back(burn);
    }
    return burns;
  }
  const Sample& newest = samples_.back();
  const double availability_budget = 1.0 - config_.availability_target;
  const double latency_budget = 1.0 - config_.latency_target;
  for (const int64_t w : config_.windows_ns) {
    // Oldest buffered sample still inside the window; with one sample the
    // deltas are zero and the burn reads 0 (no evidence yet).
    const Sample* oldest = &newest;
    for (const Sample& s : samples_) {
      if (newest.ts_ns - s.ts_ns <= w) {
        oldest = &s;
        break;
      }
    }
    WindowBurn burn;
    burn.window_ns = w;
    burn.total = newest.total - oldest->total;
    burn.errors = newest.errors - oldest->errors;
    if (burn.total > 0) {
      const double ratio = static_cast<double>(burn.errors) / static_cast<double>(burn.total);
      burn.availability_burn = ratio / availability_budget;
    }
    const uint64_t lat_total = newest.lat_total - oldest->lat_total;
    const uint64_t lat_slow = newest.lat_slow - oldest->lat_slow;
    if (lat_total > 0) {
      const double ratio = static_cast<double>(lat_slow) / static_cast<double>(lat_total);
      burn.latency_burn = ratio / latency_budget;
    }
    burns.push_back(burn);
  }
  return burns;
}

void SloMonitor::ExportGauges() const {
  if (!MetricsEnabled()) return;
  auto& registry = MetricsRegistry::Get();
  for (const WindowBurn& burn : Burn()) {
    const std::vector<std::pair<std::string, std::string>> labels = {
        {"window", WindowLabel(burn.window_ns)}};
    registry.GetGauge(LabeledName("urcl.slo.availability_burn", labels))
        .Set(burn.availability_burn);
    registry.GetGauge(LabeledName("urcl.slo.latency_burn", labels)).Set(burn.latency_burn);
  }
}

std::string SloMonitor::WindowLabel(int64_t window_ns) {
  return std::to_string(window_ns / (1000 * 1000 * 1000)) + "s";
}

}  // namespace obs
}  // namespace urcl
