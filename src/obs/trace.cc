#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/json.h"

namespace urcl {
namespace obs {
namespace {

using internal::TraceEvent;

struct TraceRing {
  explicit TraceRing(int tid_in, size_t capacity)
      : tid(tid_in), events(capacity) {}

  const int tid;
  Mutex mu;
  std::vector<TraceEvent> events URCL_GUARDED_BY(mu);  // ring storage
  size_t next URCL_GUARDED_BY(mu) = 0;                 // write cursor
  size_t size URCL_GUARDED_BY(mu) = 0;                 // valid events
  uint64_t dropped URCL_GUARDED_BY(mu) = 0;            // overwritten events
  std::string thread_name URCL_GUARDED_BY(mu);
};

struct TraceState {
  Mutex mu;
  std::vector<std::shared_ptr<TraceRing>> rings URCL_GUARDED_BY(mu);
  size_t ring_capacity URCL_GUARDED_BY(mu) = 65536;
  // ts origin; first registration wins.
  int64_t epoch_ns URCL_GUARDED_BY(mu) = 0;
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

// The calling thread's ring, created and registered on first use. The
// thread_local shared_ptr keeps the ring alive per-thread; the global list
// keeps it alive (and exportable) after the thread exits.
// Thread-bound trace ID (TraceFlow); plain thread_local, no synchronization.
thread_local uint64_t t_current_trace_id = 0;

TraceRing& ThisThreadRing() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    TraceState& state = State();
    MutexLock lock(state.mu);
    if (state.rings.empty()) state.epoch_ns = MonotonicNowNs();
    auto created = std::make_shared<TraceRing>(static_cast<int>(state.rings.size()),
                                               state.ring_capacity);
    state.rings.push_back(created);
    return created;
  }();
  return *ring;
}

}  // namespace

namespace internal {

void RecordSpan(const char* name, int64_t begin_ns, int64_t end_ns) {
  TraceRing& ring = ThisThreadRing();
  MutexLock lock(ring.mu);
  if (ring.events.empty()) return;
  TraceEvent& slot = ring.events[ring.next];
  std::strncpy(slot.name, name, sizeof(slot.name) - 1);
  slot.name[sizeof(slot.name) - 1] = '\0';
  slot.begin_ns = begin_ns;
  slot.end_ns = end_ns;
  slot.flow_id = t_current_trace_id;
  ring.next = (ring.next + 1) % ring.events.size();
  if (ring.size < ring.events.size()) {
    ++ring.size;
  } else {
    ++ring.dropped;
  }
}

}  // namespace internal

void TraceScope::SetName(const char* name, int64_t index) {
  if (index < 0) {
    std::strncpy(name_, name, sizeof(name_) - 1);
    name_[sizeof(name_) - 1] = '\0';
  } else {
    std::snprintf(name_, sizeof(name_), "%s_%lld", name, static_cast<long long>(index));
  }
}

uint64_t MintTraceId() {
  // splitmix64 of a process-wide counter: unique per process, well spread
  // over 64 bits (so flow IDs do not collide with small literals in tools),
  // and independent of clocks and the seeded experiment RNGs.
  static std::atomic<uint64_t> next{1};
  uint64_t z = next.fetch_add(1, std::memory_order_relaxed) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 means "no trace"; splitmix64(x)==0 has one preimage
}

uint64_t CurrentTraceId() { return t_current_trace_id; }

TraceFlow::TraceFlow(uint64_t trace_id) : saved_(t_current_trace_id) {
  t_current_trace_id = trace_id;
}

TraceFlow::~TraceFlow() { t_current_trace_id = saved_; }

void SetThreadName(const std::string& name) {
  TraceRing& ring = ThisThreadRing();
  MutexLock lock(ring.mu);
  ring.thread_name = name;
}

void SetTraceRingCapacity(size_t events) {
  TraceState& state = State();
  MutexLock lock(state.mu);
  state.ring_capacity = events;
}

std::string ChromeTraceJson() {
  TraceState& state = State();
  std::vector<std::shared_ptr<TraceRing>> rings;
  int64_t epoch_ns = 0;
  {
    MutexLock lock(state.mu);
    rings = state.rings;
    epoch_ns = state.epoch_ns;
  }

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  uint64_t total_dropped = 0;
  // Flow IDs already emitted, so each flow gets one "s" (start) arrow and
  // subsequent slices attach with "t" (step) — Perfetto then draws arrows
  // between every span carrying the same request trace ID.
  std::map<uint64_t, bool> flows_started;
  for (const auto& ring : rings) {
    MutexLock lock(ring->mu);
    const std::string thread_name =
        ring->thread_name.empty() ? "thread-" + std::to_string(ring->tid)
                                  : ring->thread_name;
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << ring->tid
        << ",\"args\":{\"name\":" << JsonString(thread_name) << "}}";
    // Oldest-first walk of the ring.
    const size_t capacity = ring->events.size();
    const size_t start = (ring->next + capacity - ring->size) % (capacity == 0 ? 1 : capacity);
    for (size_t i = 0; i < ring->size; ++i) {
      const TraceEvent& event = ring->events[(start + i) % capacity];
      const double ts_us = static_cast<double>(event.begin_ns - epoch_ns) / 1000.0;
      const double dur_us = static_cast<double>(event.end_ns - event.begin_ns) / 1000.0;
      out << ",{\"name\":" << JsonString(event.name)
          << ",\"cat\":\"urcl\",\"ph\":\"X\",\"ts\":" << JsonNumber(ts_us)
          << ",\"dur\":" << JsonNumber(dur_us) << ",\"pid\":1,\"tid\":" << ring->tid;
      if (event.flow_id != 0) {
        char hex[24];
        std::snprintf(hex, sizeof(hex), "0x%llx",
                      static_cast<unsigned long long>(event.flow_id));
        out << ",\"args\":{\"trace_id\":\"" << hex << "\"}";
        bool& started = flows_started[event.flow_id];
        out << "},{\"name\":\"request\",\"cat\":\"urcl.flow\",\"ph\":\""
            << (started ? 't' : 's') << "\",\"id\":\"" << hex
            << "\",\"ts\":" << JsonNumber(ts_us) << ",\"pid\":1,\"tid\":" << ring->tid;
        started = true;
      }
      out << "}";
    }
    total_dropped += ring->dropped;
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
      << total_dropped << "}}";
  return out.str();
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Error("cannot open trace output file: " + path);
  out << ChromeTraceJson();
  out.flush();
  if (!out) return Status::Error("failed writing trace output file: " + path);
  return Status::Ok();
}

size_t TraceEventCount() {
  TraceState& state = State();
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    MutexLock lock(state.mu);
    rings = state.rings;
  }
  size_t total = 0;
  for (const auto& ring : rings) {
    MutexLock lock(ring->mu);
    total += ring->size;
  }
  return total;
}

void ClearTrace() {
  TraceState& state = State();
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    MutexLock lock(state.mu);
    rings = state.rings;
  }
  for (const auto& ring : rings) {
    MutexLock lock(ring->mu);
    ring->next = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
}

}  // namespace obs
}  // namespace urcl
