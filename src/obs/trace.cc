#include "obs/trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/json.h"

namespace urcl {
namespace obs {
namespace {

using internal::TraceEvent;

struct TraceRing {
  explicit TraceRing(int tid_in, size_t capacity)
      : tid(tid_in), events(capacity) {}

  const int tid;
  std::mutex mu;
  std::vector<TraceEvent> events;  // ring storage
  size_t next = 0;                 // write cursor
  size_t size = 0;                 // valid events (<= events.size())
  uint64_t dropped = 0;            // overwritten events
  std::string thread_name;
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceRing>> rings;
  size_t ring_capacity = 65536;
  int64_t epoch_ns = 0;  // ts origin; first registration wins
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

// The calling thread's ring, created and registered on first use. The
// thread_local shared_ptr keeps the ring alive per-thread; the global list
// keeps it alive (and exportable) after the thread exits.
TraceRing& ThisThreadRing() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.rings.empty()) state.epoch_ns = MonotonicNowNs();
    auto created = std::make_shared<TraceRing>(static_cast<int>(state.rings.size()),
                                               state.ring_capacity);
    state.rings.push_back(created);
    return created;
  }();
  return *ring;
}

}  // namespace

namespace internal {

void RecordSpan(const char* name, int64_t begin_ns, int64_t end_ns) {
  TraceRing& ring = ThisThreadRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.events.empty()) return;
  TraceEvent& slot = ring.events[ring.next];
  std::strncpy(slot.name, name, sizeof(slot.name) - 1);
  slot.name[sizeof(slot.name) - 1] = '\0';
  slot.begin_ns = begin_ns;
  slot.end_ns = end_ns;
  ring.next = (ring.next + 1) % ring.events.size();
  if (ring.size < ring.events.size()) {
    ++ring.size;
  } else {
    ++ring.dropped;
  }
}

}  // namespace internal

void TraceScope::SetName(const char* name, int64_t index) {
  if (index < 0) {
    std::strncpy(name_, name, sizeof(name_) - 1);
    name_[sizeof(name_) - 1] = '\0';
  } else {
    std::snprintf(name_, sizeof(name_), "%s_%lld", name, static_cast<long long>(index));
  }
}

void SetThreadName(const std::string& name) {
  TraceRing& ring = ThisThreadRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.thread_name = name;
}

void SetTraceRingCapacity(size_t events) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.ring_capacity = events;
}

std::string ChromeTraceJson() {
  TraceState& state = State();
  std::vector<std::shared_ptr<TraceRing>> rings;
  int64_t epoch_ns = 0;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    rings = state.rings;
    epoch_ns = state.epoch_ns;
  }

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  uint64_t total_dropped = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    const std::string thread_name =
        ring->thread_name.empty() ? "thread-" + std::to_string(ring->tid)
                                  : ring->thread_name;
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << ring->tid
        << ",\"args\":{\"name\":" << JsonString(thread_name) << "}}";
    // Oldest-first walk of the ring.
    const size_t capacity = ring->events.size();
    const size_t start = (ring->next + capacity - ring->size) % (capacity == 0 ? 1 : capacity);
    for (size_t i = 0; i < ring->size; ++i) {
      const TraceEvent& event = ring->events[(start + i) % capacity];
      const double ts_us = static_cast<double>(event.begin_ns - epoch_ns) / 1000.0;
      const double dur_us = static_cast<double>(event.end_ns - event.begin_ns) / 1000.0;
      out << ",{\"name\":" << JsonString(event.name)
          << ",\"cat\":\"urcl\",\"ph\":\"X\",\"ts\":" << JsonNumber(ts_us)
          << ",\"dur\":" << JsonNumber(dur_us) << ",\"pid\":1,\"tid\":" << ring->tid << "}";
    }
    total_dropped += ring->dropped;
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
      << total_dropped << "}}";
  return out.str();
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Error("cannot open trace output file: " + path);
  out << ChromeTraceJson();
  out.flush();
  if (!out) return Status::Error("failed writing trace output file: " + path);
  return Status::Ok();
}

size_t TraceEventCount() {
  TraceState& state = State();
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    rings = state.rings;
  }
  size_t total = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->size;
  }
  return total;
}

void ClearTrace() {
  TraceState& state = State();
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    rings = state.rings;
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->next = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
}

}  // namespace obs
}  // namespace urcl
