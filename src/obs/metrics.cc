#include "obs/metrics.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/json.h"

namespace urcl {
namespace obs {

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  for (auto& shard : shards_) {
    shard.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double v) {
  // lower_bound keeps the documented (and Prometheus le) semantics: an
  // observation equal to an edge counts into that edge's bucket.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& shard = shards_[internal::ThreadShardIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.bucket_counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < shard.buckets.size(); ++i) {
      snap.bucket_counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.count += shard.count.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) bucket.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> ExponentialBuckets(double start, double factor, int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(name, bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) snap.counters[name] = counter->Value();
  for (const auto& [name, gauge] : gauges_) snap.gauges[name] = gauge->Value();
  for (const auto& [name, histogram] : histograms_) snap.histograms[name] = histogram->Snap();
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << JsonNumber(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":{\"bounds\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out << ",";
      out << JsonNumber(h.bounds[i]);
    }
    out << "],\"counts\":[";
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out << ",";
      out << h.bucket_counts[i];
    }
    out << "],\"sum\":" << JsonNumber(h.sum) << ",\"count\":" << h.count << "}";
  }
  out << "}}";
  return out.str();
}

namespace internal {

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted names
// map '.' and '-' to '_'. A name starting with a digit gets a '_' prefix.
std::string PromSanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') out.insert(0, 1, '_');
  return out;
}

std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 4);
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace internal

std::string LabeledName(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return base;
  std::string out = base;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += internal::PromSanitizeName(key);
    out += "=\"";
    out += internal::PromEscapeLabelValue(value);
    out += '"';
  }
  out += '}';
  return out;
}

namespace {

std::string PromDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Splits a registry series name into sanitized base + the pre-escaped label
// block ("k=\"v\",...", no braces; empty when the name carries no labels).
// Labels were escaped by LabeledName at construction and pass through
// verbatim.
struct PromSeries {
  std::string base;
  std::string labels;
};

PromSeries SplitPromSeries(const std::string& name) {
  PromSeries series;
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    series.base = internal::PromSanitizeName(name);
    return series;
  }
  series.base = internal::PromSanitizeName(name.substr(0, brace));
  const size_t close = name.rfind('}');
  if (close != std::string::npos && close > brace) {
    series.labels = name.substr(brace + 1, close - brace - 1);
  }
  return series;
}

// "# TYPE" must be emitted once per metric family; labeled series share the
// family of their base name.
void EmitType(std::ostringstream& out, std::set<std::string>* typed,
              const std::string& base, const char* type) {
  if (typed->insert(base).second) out << "# TYPE " << base << " " << type << "\n";
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream out;
  std::set<std::string> typed;
  for (const auto& [name, value] : snap.counters) {
    const PromSeries series = SplitPromSeries(name);
    EmitType(out, &typed, series.base, "counter");
    out << series.base;
    if (!series.labels.empty()) out << "{" << series.labels << "}";
    out << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const PromSeries series = SplitPromSeries(name);
    EmitType(out, &typed, series.base, "gauge");
    out << series.base;
    if (!series.labels.empty()) out << "{" << series.labels << "}";
    out << " " << PromDouble(value) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const PromSeries series = SplitPromSeries(name);
    EmitType(out, &typed, series.base, "histogram");
    // A labeled histogram folds `le` into its label block.
    const std::string label_prefix =
        series.labels.empty() ? "" : series.labels + ",";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.bucket_counts[i];
      out << series.base << "_bucket{" << label_prefix << "le=\"" << PromDouble(h.bounds[i])
          << "\"} " << cumulative << "\n";
    }
    out << series.base << "_bucket{" << label_prefix << "le=\"+Inf\"} " << h.count << "\n";
    out << series.base << "_sum";
    if (!series.labels.empty()) out << "{" << series.labels << "}";
    out << " " << PromDouble(h.sum) << "\n";
    out << series.base << "_count";
    if (!series.labels.empty()) out << "{" << series.labels << "}";
    out << " " << h.count << "\n";
  }
  return out.str();
}

void MetricsRegistry::ResetCounters() {
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace urcl
