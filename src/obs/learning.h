// Learning-quality telemetry for the continual protocol: the per-stage
// evaluation matrix R[t][s] (the error metric on stage s's retained holdout
// measured after training through stage t), and the forgetting / backward-
// transfer statistics derived from it. This is the signal family the
// distribution-aware CL strategies queued on the roadmap (DOCL, R2R) key on,
// and what makes Table II-style forgetting visible run over run.
//
// Conventions (error metric, lower is better — MAE here):
//   forgetting(s)     = R[T][s] - R[s][s]   for the latest trained stage T
//                       (positive = stage s got worse after later training);
//   backward transfer = mean over s < T of (R[s][s] - R[T][s])
//                       (positive = later training *improved* old stages;
//                        BWT = -mean forgetting, the GEM sign convention
//                        adapted to an error metric).
//
// The recorder is plain data (no model/tensor dependencies): the protocol
// runner feeds it scalars. Exported two ways: registry gauges
// (urcl.learn.forgetting{stage=..}, urcl.learn.backward_transfer) and an
// EXPERIMENTS.md-compatible JSON document with the full matrix per stage.
#ifndef URCL_OBS_LEARNING_H_
#define URCL_OBS_LEARNING_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace urcl {
namespace obs {

class LearningTelemetry {
 public:
  // Records metric (e.g. denormalized MAE) measured on stage `eval_stage`'s
  // holdout after training through stage `trained_stage`. Re-recording the
  // same cell overwrites it.
  void Record(int64_t trained_stage, int64_t eval_stage, double metric);

  // R[s][s]; NaN when stage s was never evaluated right after training.
  double Diagonal(int64_t stage) const;
  // R[T][s] for the latest trained stage T; NaN when absent.
  double Latest(int64_t stage) const;

  // forgetting(s) as defined above; NaN when either cell is missing.
  double Forgetting(int64_t stage) const;
  // Mean forgetting over stages < latest with both cells present (0 when
  // fewer than two stages are recorded).
  double MeanForgetting() const;
  double BackwardTransfer() const { return -MeanForgetting(); }

  int64_t latest_trained_stage() const { return latest_trained_; }
  bool empty() const { return matrix_.empty(); }

  // Writes urcl.learn.forgetting{stage="s"} per evaluated earlier stage plus
  // urcl.learn.backward_transfer and urcl.learn.stages_trained gauges.
  void ExportGauges() const;

  // {"stages": T+1, "matrix": {"t": {"s": metric, ...}, ...},
  //  "forgetting": {"s": f, ...}, "mean_forgetting": .., "backward_transfer": ..}
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  // matrix_[trained][eval] = metric
  std::map<int64_t, std::map<int64_t, double>> matrix_;
  int64_t latest_trained_ = -1;
};

}  // namespace obs
}  // namespace urcl

#endif  // URCL_OBS_LEARNING_H_
