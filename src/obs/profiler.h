// Per-op autograd profiler. Hooked into the tape at two choke points:
//
//  forward — each differentiable op function in autograd/ops.cc opens with
//    URCL_PROFILE_OP(); which pushes a start timestamp onto a thread-local
//    stack. Variable::MakeOp (the single funnel every op result passes
//    through) pops the innermost start, so the measured interval is
//    [op function entry, tape-node creation] — the kernel work — keyed by
//    the op_name the tape already carries. Ops that delegate entirely to
//    another op (Neg -> MulScalar) attribute their time to the inner op;
//    the timer RAII unwinds any start its MakeOp never consumed, so early
//    returns (e.g. Dropout's identity path) cannot corrupt the stack.
//
//  backward — Variable::BackwardWithSeed times each node's backward closure
//    directly; no per-op changes needed.
//
// Records aggregate per op *type* (per-thread shards merged at snapshot):
// wall ns, call count and output bytes, for each direction.
#ifndef URCL_OBS_PROFILER_H_
#define URCL_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/stopwatch.h"
#include "obs/obs.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace urcl {
namespace obs {

struct OpProfile {
  uint64_t forward_calls = 0;
  int64_t forward_ns = 0;
  uint64_t forward_bytes = 0;  // bytes of op outputs (value tensors)
  uint64_t backward_calls = 0;
  int64_t backward_ns = 0;
  uint64_t backward_bytes = 0;  // bytes of upstream gradients consumed
};

namespace internal {

// Fast timestamp for the per-op hot path: raw TSC ticks on x86-64 (a few ns
// per read; converted to wall ns through a one-time calibration against
// MonotonicNowNs), plain monotonic ns elsewhere (TicksToNs is then the
// identity). A clock_gettime pair per op is most of a profiler's overhead at
// ~1.3k records per train step, which is what this dodges.
inline int64_t ProfileTicksNow() {
#if defined(__x86_64__) || defined(_M_X64)
  return static_cast<int64_t>(__rdtsc());
#else
  return MonotonicNowNs();
#endif
}
// Converts a tick interval to nanoseconds (first call calibrates, ~2ms).
int64_t TicksToNs(int64_t ticks);

// Thread-local stack of forward start timestamps, in ProfileTicksNow units
// (see header comment).
void PushForwardStart(int64_t start_ticks);
// Pops the innermost start and returns elapsed ns; -1 when the stack is
// empty (MakeOp called outside any URCL_PROFILE_OP scope).
int64_t PopForwardStart();
// Unwinds the stack to `depth` (timer RAII cleanup).
void UnwindForwardStarts(size_t depth);
size_t ForwardStackDepth();

void RecordForward(const std::string& op_name, int64_t ns, uint64_t bytes);
void RecordBackward(const std::string& op_name, int64_t ns, uint64_t bytes);

}  // namespace internal

// RAII used via URCL_PROFILE_OP() at the top of each autograd op function.
class OpTimer {
 public:
  OpTimer() {
    if (ProfilerEnabled()) {
      armed_ = true;
      depth_ = internal::ForwardStackDepth();
      internal::PushForwardStart(internal::ProfileTicksNow());
    }
  }
  ~OpTimer() {
    if (armed_) internal::UnwindForwardStarts(depth_);
  }

  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
  bool armed_ = false;
  size_t depth_ = 0;
};

#define URCL_PROFILE_OP() ::urcl::obs::OpTimer urcl_profile_op_timer_

// Aggregated per-op-type table, merged across threads, op name ascending.
std::map<std::string, OpProfile> ProfilerSnapshot();
void ResetProfiler();

// Human-readable table (op, calls, total ms, mean us, MB moved, fwd/bwd).
std::string ProfilerTable();
// JSON: {"ops":{"matmul":{"forward":{"calls":..,"ns":..,"bytes":..},
// "backward":{...}}, ...}}
std::string ProfilerJson();

}  // namespace obs
}  // namespace urcl

#endif  // URCL_OBS_PROFILER_H_
