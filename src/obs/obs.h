// Process-wide observability switchboard. Everything in src/obs/ — the
// metrics registry, tracing spans and the autograd profiler — is off by
// default and guarded by three flags that cost one relaxed atomic load to
// test, so instrumented code paths are near-free when observability is
// disabled.
//
// Enabling:
//  - programmatically: obs::Configure({.metrics = true, ...});
//  - URCL_OBS env var: "1"/"on"/"all" enable everything, "0"/"off" disable,
//    or a comma list of subsystems ("metrics,trace,profile");
//  - `--metrics-out F` / `--trace-out F` / `--profile-out F` on any binary
//    that calls ApplyRuntimeFlags: each flag enables its subsystem and
//    registers F to be written by WriteConfiguredOutputs().
//
// This library sits below everything else (it depends only on the standard
// library and the header-only common/status.h + common/stopwatch.h), so the
// tensor pool, the runtime thread pool and the autograd tape can all link it
// without cycles.
#ifndef URCL_OBS_OBS_H_
#define URCL_OBS_OBS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace urcl {
namespace obs {

struct ObsConfig {
  bool metrics = false;   // metrics registry export (registry always counts
                          // the always-on residents, e.g. pool counters)
  bool trace = false;     // URCL_TRACE_SCOPE span recording
  bool profiler = false;  // per-op autograd profiler
};

namespace internal {

// Bit flags packed into one constinit atomic so the enabled checks are a
// single relaxed load with no static-initialization-order hazards.
inline constexpr uint32_t kMetricsBit = 1u << 0;
inline constexpr uint32_t kTraceBit = 1u << 1;
inline constexpr uint32_t kProfilerBit = 1u << 2;
inline constinit std::atomic<uint32_t> g_flags{0};

}  // namespace internal

inline bool MetricsEnabled() {
  return (internal::g_flags.load(std::memory_order_relaxed) & internal::kMetricsBit) != 0;
}
inline bool TraceEnabled() {
  return (internal::g_flags.load(std::memory_order_relaxed) & internal::kTraceBit) != 0;
}
inline bool ProfilerEnabled() {
  return (internal::g_flags.load(std::memory_order_relaxed) & internal::kProfilerBit) != 0;
}

// Replaces the process-wide configuration.
void Configure(const ObsConfig& config);
ObsConfig Current();

// Applies the URCL_OBS env var (no-op when unset; see the header comment for
// the accepted grammar).
void InitFromEnv();

// Output files written by WriteConfiguredOutputs(). Setting a non-empty path
// also enables the corresponding subsystem.
void SetMetricsOutPath(std::string path);   // Prometheus text exposition
void SetTraceOutPath(std::string path);     // Chrome trace_event JSON
void SetProfileOutPath(std::string path);   // per-op profiler table (JSON)

// Writes every configured output file; returns the paths written. Call at
// the end of main (idempotent: each call rewrites the same files with the
// current state). Errors are reported per file in *errors when non-null.
std::vector<std::string> WriteConfiguredOutputs(std::vector<std::string>* errors = nullptr);

}  // namespace obs
}  // namespace urcl

#endif  // URCL_OBS_OBS_H_
