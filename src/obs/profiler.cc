#include "obs/profiler.h"

#include <cstdio>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/json.h"

namespace urcl {
namespace obs {
namespace {

// One per (thread, op type) pair: atomics only the owning thread writes (so
// updates are plain relaxed load+store pairs, no RMW) and only the
// snapshotting thread additionally reads, which keeps concurrent trainers
// TSan-clean with no mutex or locked instruction in the per-op hot loop (the
// mutex below guards only cell *registration*, once per op type per thread).
struct OpCell {
  std::string name;
  std::atomic<uint64_t> forward_calls{0};
  std::atomic<int64_t> forward_ns{0};
  std::atomic<uint64_t> forward_bytes{0};
  std::atomic<uint64_t> backward_calls{0};
  std::atomic<int64_t> backward_ns{0};
  std::atomic<uint64_t> backward_bytes{0};
};

struct ProfState {
  Mutex mu;
  // Every thread's cells; the shared_ptrs are copied out under mu and the
  // cells themselves are atomics (see OpCell).
  std::vector<std::shared_ptr<OpCell>> cells URCL_GUARDED_BY(mu);
};

ProfState& State() {
  static ProfState* state = new ProfState();
  return *state;
}

// FNV-1a over the (short) op name: cheaper than std::hash<std::string> on
// the record path, and integer-keyed map lookups beat string-keyed ones.
uint64_t NameHash(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Owner-only name -> cell lookup; the raw pointers stay valid after thread
// exit because the global list holds the owning shared_ptr. The fast map is
// keyed by the 64-bit name hash with an equality check on hit; the (in
// practice never populated) string-keyed map catches hash collisions so two
// colliding op names cannot silently merge.
OpCell& CellFor(const std::string& op_name) {
  thread_local std::unordered_map<uint64_t, OpCell*> tl_fast;
  thread_local std::unordered_map<std::string, OpCell*> tl_collided;
  const uint64_t key = NameHash(op_name);
  const auto it = tl_fast.find(key);
  if (it != tl_fast.end()) {
    if (it->second->name == op_name) return *it->second;
    const auto collided = tl_collided.find(op_name);
    if (collided != tl_collided.end()) return *collided->second;
  }
  auto cell = std::make_shared<OpCell>();
  cell->name = op_name;
  {
    ProfState& state = State();
    MutexLock lock(state.mu);
    state.cells.push_back(cell);
  }
  if (it == tl_fast.end()) {
    tl_fast.emplace(key, cell.get());
  } else {
    tl_collided.emplace(op_name, cell.get());
  }
  return *cell;
}

// Owner-only increment: the cell has exactly one writer, so a relaxed
// load+store pair replaces the locked fetch_add.
void Bump(std::atomic<uint64_t>& cell, uint64_t delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}
void Bump(std::atomic<int64_t>& cell, int64_t delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

thread_local std::vector<int64_t> tl_forward_starts;

}  // namespace

namespace internal {

#if defined(__x86_64__) || defined(_M_X64)
int64_t TicksToNs(int64_t ticks) {
  // One-time calibration: spin ~2ms against the monotonic clock so the
  // conversion error is dominated by TSC drift, not clock-read overhead.
  static const double ns_per_tick = [] {
    const int64_t ns0 = MonotonicNowNs();
    const int64_t t0 = ProfileTicksNow();
    while (MonotonicNowNs() - ns0 < 2000000) {
    }
    const int64_t ns1 = MonotonicNowNs();
    const int64_t t1 = ProfileTicksNow();
    return t1 > t0 ? static_cast<double>(ns1 - ns0) / static_cast<double>(t1 - t0) : 1.0;
  }();
  return static_cast<int64_t>(static_cast<double>(ticks) * ns_per_tick);
}
#else
int64_t TicksToNs(int64_t ticks) { return ticks; }
#endif

void PushForwardStart(int64_t start_ticks) { tl_forward_starts.push_back(start_ticks); }

int64_t PopForwardStart() {
  if (tl_forward_starts.empty()) return -1;
  const int64_t start = tl_forward_starts.back();
  tl_forward_starts.pop_back();
  const int64_t ns = TicksToNs(ProfileTicksNow() - start);
  return ns < 0 ? 0 : ns;  // -1 stays reserved for "stack was empty"
}

void UnwindForwardStarts(size_t depth) {
  if (tl_forward_starts.size() > depth) tl_forward_starts.resize(depth);
}

size_t ForwardStackDepth() { return tl_forward_starts.size(); }

void RecordForward(const std::string& op_name, int64_t ns, uint64_t bytes) {
  OpCell& cell = CellFor(op_name);
  Bump(cell.forward_calls, 1);
  Bump(cell.forward_ns, ns);
  Bump(cell.forward_bytes, bytes);
}

void RecordBackward(const std::string& op_name, int64_t ns, uint64_t bytes) {
  OpCell& cell = CellFor(op_name);
  Bump(cell.backward_calls, 1);
  Bump(cell.backward_ns, ns);
  Bump(cell.backward_bytes, bytes);
}

}  // namespace internal

std::map<std::string, OpProfile> ProfilerSnapshot() {
  ProfState& state = State();
  std::vector<std::shared_ptr<OpCell>> cells;
  {
    MutexLock lock(state.mu);
    cells = state.cells;
  }
  std::map<std::string, OpProfile> merged;
  for (const auto& cell : cells) {
    const uint64_t forward_calls = cell->forward_calls.load(std::memory_order_relaxed);
    const uint64_t backward_calls = cell->backward_calls.load(std::memory_order_relaxed);
    // Cells survive ResetProfiler with zeroed counts; only touched op types
    // appear in the table.
    if (forward_calls == 0 && backward_calls == 0) continue;
    OpProfile& out = merged[cell->name];
    out.forward_calls += forward_calls;
    out.forward_ns += cell->forward_ns.load(std::memory_order_relaxed);
    out.forward_bytes += cell->forward_bytes.load(std::memory_order_relaxed);
    out.backward_calls += backward_calls;
    out.backward_ns += cell->backward_ns.load(std::memory_order_relaxed);
    out.backward_bytes += cell->backward_bytes.load(std::memory_order_relaxed);
  }
  return merged;
}

void ResetProfiler() {
  ProfState& state = State();
  std::vector<std::shared_ptr<OpCell>> cells;
  {
    MutexLock lock(state.mu);
    cells = state.cells;
  }
  for (const auto& cell : cells) {
    cell->forward_calls.store(0, std::memory_order_relaxed);
    cell->forward_ns.store(0, std::memory_order_relaxed);
    cell->forward_bytes.store(0, std::memory_order_relaxed);
    cell->backward_calls.store(0, std::memory_order_relaxed);
    cell->backward_ns.store(0, std::memory_order_relaxed);
    cell->backward_bytes.store(0, std::memory_order_relaxed);
  }
}

std::string ProfilerTable() {
  const std::map<std::string, OpProfile> snap = ProfilerSnapshot();
  std::ostringstream out;
  out << "op                    dir    calls     total ms    mean us        MB\n";
  char line[160];
  for (const auto& [name, p] : snap) {
    if (p.forward_calls > 0) {
      std::snprintf(line, sizeof(line), "%-20s  fwd  %8llu  %11.3f  %9.2f  %8.2f\n",
                    name.c_str(), static_cast<unsigned long long>(p.forward_calls),
                    static_cast<double>(p.forward_ns) / 1e6,
                    static_cast<double>(p.forward_ns) / 1e3 /
                        static_cast<double>(p.forward_calls),
                    static_cast<double>(p.forward_bytes) / 1e6);
      out << line;
    }
    if (p.backward_calls > 0) {
      std::snprintf(line, sizeof(line), "%-20s  bwd  %8llu  %11.3f  %9.2f  %8.2f\n",
                    name.c_str(), static_cast<unsigned long long>(p.backward_calls),
                    static_cast<double>(p.backward_ns) / 1e6,
                    static_cast<double>(p.backward_ns) / 1e3 /
                        static_cast<double>(p.backward_calls),
                    static_cast<double>(p.backward_bytes) / 1e6);
      out << line;
    }
  }
  return out.str();
}

std::string ProfilerJson() {
  const std::map<std::string, OpProfile> snap = ProfilerSnapshot();
  std::ostringstream out;
  out << "{\"ops\":{";
  bool first = true;
  for (const auto& [name, p] : snap) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":{\"forward\":{\"calls\":" << p.forward_calls
        << ",\"ns\":" << p.forward_ns << ",\"bytes\":" << p.forward_bytes
        << "},\"backward\":{\"calls\":" << p.backward_calls << ",\"ns\":" << p.backward_ns
        << ",\"bytes\":" << p.backward_bytes << "}}";
  }
  out << "}}";
  return out.str();
}

}  // namespace obs
}  // namespace urcl
