// Cached-handle metric facade. Registry lookups (MetricsRegistry::GetCounter
// etc.) take a mutex and are meant for initialization; hot paths must cache
// the returned reference. These handles bundle the cached reference with the
// obs::MetricsEnabled() gate so an instrumentation site is one declaration
// and one gated call:
//
//   struct ServeMetrics {
//     obs::CounterHandle queries{"urcl.serve.queries"};
//     obs::HistogramHandle latency{"urcl.serve.latency_ns",
//                                  obs::ExponentialBuckets(1e3, 4, 12)};
//   };
//   static ServeMetrics& M() { static auto* m = new ServeMetrics(); return *m; }
//   ...
//   M().queries.Add();            // one relaxed load + one striped add
//
// This header is also the serving layer's only sanctioned route to the
// registry: the repo lint (rule serve-metrics-registry) bans direct
// MetricsRegistry use under src/serve/ so per-query code cannot reintroduce
// a mutex-guarded map lookup on the hot path.
//
// Beyond metrics, this facade is serve's whole observability surface: the
// layering analyzer (rule layering/obs-facade, tools/lint/layering.cc) bans
// any other obs/ include from src/serve/, so the re-exports below — trace
// spans/flows, the flight recorder, and the obs runtime gates — define
// exactly what the serving layer may observe with.
#ifndef URCL_OBS_FACADE_H_
#define URCL_OBS_FACADE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace urcl {
namespace obs {

class CounterHandle {
 public:
  explicit CounterHandle(const std::string& name)
      : counter_(MetricsRegistry::Get().GetCounter(name)) {}

  void Add(uint64_t n = 1) {
    if (MetricsEnabled()) counter_.Add(n);
  }
  uint64_t Value() const { return counter_.Value(); }

 private:
  Counter& counter_;
};

class GaugeHandle {
 public:
  explicit GaugeHandle(const std::string& name)
      : gauge_(MetricsRegistry::Get().GetGauge(name)) {}

  void Set(double v) {
    if (MetricsEnabled()) gauge_.Set(v);
  }
  void Add(double delta) {
    if (MetricsEnabled()) gauge_.Add(delta);
  }
  double Value() const { return gauge_.Value(); }

 private:
  Gauge& gauge_;
};

class HistogramHandle {
 public:
  HistogramHandle(const std::string& name, const std::vector<double>& bounds)
      : histogram_(MetricsRegistry::Get().GetHistogram(name, bounds)) {}

  void Observe(double v) {
    if (MetricsEnabled()) histogram_.Observe(v);
  }

 private:
  Histogram& histogram_;
};

}  // namespace obs
}  // namespace urcl

#endif  // URCL_OBS_FACADE_H_
