// Multi-window SLO burn-rate monitor over the serving error counters and
// latency histogram (the Google SRE workbook's multi-window multi-burn-rate
// alerting shape). The monitor is pull-based: the operator (bench harness,
// embedding server, a metrics scrape loop) calls Tick / TickFromRegistry
// periodically with the current cumulative totals; each tick appends one
// sample to a bounded ring and recomputes, per configured window:
//
//   availability burn = (errors/total over the window) / (1 - availability_target)
//   latency burn      = (slow/total over the window)   / (1 - latency_target)
//
// where "slow" counts latency observations above latency_threshold_ns,
// derived from the histogram's cumulative bucket counts. Burn rate 1.0 means
// the error budget is being consumed exactly at the rate that exhausts it at
// the end of the SLO period; >1 burns faster. Results are exported as
// `urcl.slo.*` gauges labeled by window ("300s", "3600s").
#ifndef URCL_OBS_SLO_H_
#define URCL_OBS_SLO_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace urcl {
namespace obs {

struct SloConfig {
  // Targets: fraction of queries that must succeed / answer under the
  // latency threshold. Budget = 1 - target.
  double availability_target = 0.999;
  double latency_target = 0.99;
  double latency_threshold_ns = 50e6;  // 50 ms

  // Burn-rate windows, shortest first (5 min + 1 h by default).
  std::vector<int64_t> windows_ns = {300LL * 1000 * 1000 * 1000,
                                     3600LL * 1000 * 1000 * 1000};

  // Registry series consumed by TickFromRegistry. Errors are summed over
  // every listed counter.
  std::string total_counter = "urcl.serve.queries";
  std::vector<std::string> error_counters = {"urcl.serve.rejected",
                                             "urcl.serve.deadline_shed",
                                             "urcl.serve.nonfinite_outputs"};
  std::string latency_histogram = "urcl.serve.latency_ns";
  // Bounds used if the monitor reads the histogram before its first
  // observer registered it (bounds are fixed by whoever gets there first;
  // these match the serving layer's latency buckets).
  std::vector<double> latency_bounds = ExponentialBuckets(1e3, 4, 12);
};

class SloMonitor {
 public:
  explicit SloMonitor(SloConfig config = SloConfig());

  // One observation of the cumulative totals at `ts_ns` (monotonic).
  struct Sample {
    int64_t ts_ns = 0;
    uint64_t total = 0;       // queries attempted
    uint64_t errors = 0;      // failed queries (summed error counters)
    uint64_t lat_total = 0;   // latency observations
    uint64_t lat_slow = 0;    // observations above latency_threshold_ns
  };
  void Tick(const Sample& sample);

  // Reads the configured registry series and Ticks with them. The slow count
  // comes from the histogram's cumulative bucket counts at the threshold.
  void TickFromRegistry(int64_t now_ns);

  struct WindowBurn {
    int64_t window_ns = 0;
    uint64_t total = 0;      // queries inside the window
    uint64_t errors = 0;
    double availability_burn = 0.0;
    double latency_burn = 0.0;
  };
  // One entry per configured window, computed from the buffered samples.
  // Windows longer than the buffered history fall back to all of it.
  std::vector<WindowBurn> Burn() const;

  // Writes urcl.slo.availability_burn{window=..} / urcl.slo.latency_burn{..}
  // gauges for every window (no-op cost when metrics are disabled is the
  // usual gate; this is a periodic path, not a hot one).
  void ExportGauges() const;

  // "300s" for 5 minutes etc.; the gauge label.
  static std::string WindowLabel(int64_t window_ns);

  const SloConfig& config() const { return config_; }

 private:
  SloConfig config_;
  mutable Mutex mu_;
  std::deque<Sample> samples_ URCL_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace urcl

#endif  // URCL_OBS_SLO_H_
