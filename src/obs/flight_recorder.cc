#include "obs/flight_recorder.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/thread_annotations.h"
#include "common/stopwatch.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace urcl {
namespace obs {
namespace {

// 8 stripes x 512 slots = 4096 buffered events. Lifecycle events arrive at
// per-publish / per-incident rates, so this spans hours of serving history;
// the stripes exist so concurrent query threads recording sheds/quarantines
// never contend on one lock.
constexpr size_t kFlightStripes = 8;
constexpr size_t kFlightStripeCapacity = 512;

struct FlightStripe {
  mutable Mutex mu;
  std::array<FlightEvent, kFlightStripeCapacity> ring URCL_GUARDED_BY(mu);
  size_t next URCL_GUARDED_BY(mu) = 0;
  size_t size URCL_GUARDED_BY(mu) = 0;
};

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kSnapshotPublish: return "snapshot_publish";
    case FlightEventType::kSnapshotAdmit: return "snapshot_admit";
    case FlightEventType::kSnapshotQuarantine: return "snapshot_quarantine";
    case FlightEventType::kHotSwap: return "hot_swap";
    case FlightEventType::kRollback: return "rollback";
    case FlightEventType::kHealthTransition: return "health_transition";
    case FlightEventType::kPlanCompile: return "plan_compile";
    case FlightEventType::kPlanFallback: return "plan_fallback";
    case FlightEventType::kCheckpointWrite: return "checkpoint_write";
    case FlightEventType::kDriftTrigger: return "drift_trigger";
    case FlightEventType::kNonFiniteQuarantine: return "nonfinite_quarantine";
    case FlightEventType::kDeadlineShed: return "deadline_shed";
    case FlightEventType::kLameDuck: return "lame_duck";
    case FlightEventType::kFatalAbort: return "fatal_abort";
  }
  return "unknown";
}

struct FlightRecorder::Impl {
  std::array<FlightStripe, kFlightStripes> stripes;
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> dumps{0};
  mutable Mutex dump_mu;
  // Dump directory (empty = env / cwd default) and last written path.
  std::string dump_dir URCL_GUARDED_BY(dump_mu);
  std::string last_dump_path URCL_GUARDED_BY(dump_mu);
};

namespace {

// The fatal-abort path: record the failure itself, then flush everything the
// recorder holds next to the crashing process. Runs under the check layer's
// re-entrancy guard; failures to write are swallowed (the process is already
// aborting).
void FlightAbortHook(const char* file, int line, const char* message) {
  char detail[sizeof(FlightEvent{}.detail)];
  std::snprintf(detail, sizeof(detail), "%s:%d %s", file, line,
                message != nullptr ? message : "");
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Record(FlightEventType::kFatalAbort, 0, 0, detail);
  recorder.AutoDump("fatal");
}

}  // namespace

FlightRecorder::FlightRecorder() : impl_(new Impl()) {
  urcl::internal::SetCheckFailureHook(&FlightAbortHook);
}

FlightRecorder& FlightRecorder::Get() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::Record(FlightEventType type, int64_t a, int64_t b,
                            const char* detail) {
  const uint64_t seq = impl_->seq.fetch_add(1, std::memory_order_relaxed);
  FlightStripe& stripe = impl_->stripes[internal::ThreadShardIndex()];
  MutexLock lock(stripe.mu);
  FlightEvent& slot = stripe.ring[stripe.next];
  slot.seq = seq;
  slot.ts_ns = MonotonicNowNs();
  slot.trace_id = CurrentTraceId();
  slot.type = type;
  slot.a = a;
  slot.b = b;
  if (detail != nullptr) {
    std::strncpy(slot.detail, detail, sizeof(slot.detail) - 1);
    slot.detail[sizeof(slot.detail) - 1] = '\0';
  } else {
    slot.detail[0] = '\0';
  }
  stripe.next = (stripe.next + 1) % stripe.ring.size();
  if (stripe.size < stripe.ring.size()) ++stripe.size;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  for (const FlightStripe& stripe : impl_->stripes) {
    MutexLock lock(stripe.mu);
    const size_t capacity = stripe.ring.size();
    const size_t start = (stripe.next + capacity - stripe.size) % capacity;
    for (size_t i = 0; i < stripe.size; ++i) {
      events.push_back(stripe.ring[(start + i) % capacity]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& x, const FlightEvent& y) { return x.seq < y.seq; });
  return events;
}

std::string FlightRecorder::ToJsonl() const {
  const std::vector<FlightEvent> events = Snapshot();
  std::ostringstream out;
  for (const FlightEvent& event : events) {
    out << "{\"seq\":" << event.seq << ",\"ts_ns\":" << event.ts_ns << ",\"type\":\""
        << FlightEventTypeName(event.type) << "\"";
    if (event.trace_id != 0) {
      char hex[24];
      std::snprintf(hex, sizeof(hex), "0x%llx",
                    static_cast<unsigned long long>(event.trace_id));
      out << ",\"trace_id\":\"" << hex << "\"";
    }
    out << ",\"a\":" << event.a << ",\"b\":" << event.b;
    if (event.detail[0] != '\0') {
      out << ",\"detail\":" << JsonString(event.detail);
    }
    out << "}\n";
  }
  return out.str();
}

Status FlightRecorder::DumpToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Error("cannot open blackbox dump file: " + path);
  out << ToJsonl();
  out.flush();
  if (!out) return Status::Error("failed writing blackbox dump file: " + path);
  return Status::Ok();
}

std::string FlightRecorder::AutoDump(const char* reason) {
  std::string dir;
  {
    MutexLock lock(impl_->dump_mu);
    dir = impl_->dump_dir;
  }
  if (dir.empty()) {
    if (const char* env = std::getenv("URCL_BLACKBOX_DIR")) dir = std::string(env);
  }
  if (dir.empty()) dir = std::string(".");
  const std::string path =
      dir + "/urcl_blackbox." + (reason != nullptr ? reason : "dump") + ".jsonl";
  const Status status = DumpToFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "[urcl.obs] blackbox auto-dump failed: %s\n",
                 status.ToString().c_str());
    return std::string();
  }
  impl_->dumps.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(impl_->dump_mu);
    impl_->last_dump_path = path;
  }
  std::fprintf(stderr, "[urcl.obs] flight recorder dumped to %s (%s)\n", path.c_str(),
               reason != nullptr ? reason : "dump");
  return path;
}

void FlightRecorder::SetDumpDir(std::string dir) {
  MutexLock lock(impl_->dump_mu);
  impl_->dump_dir = std::move(dir);
}

void FlightRecorder::Clear() {
  for (FlightStripe& stripe : impl_->stripes) {
    MutexLock lock(stripe.mu);
    stripe.next = 0;
    stripe.size = 0;
  }
}

uint64_t FlightRecorder::events_recorded() const {
  return impl_->seq.load(std::memory_order_relaxed);
}

uint64_t FlightRecorder::dumps_written() const {
  return impl_->dumps.load(std::memory_order_relaxed);
}

std::string FlightRecorder::last_dump_path() const {
  MutexLock lock(impl_->dump_mu);
  return impl_->last_dump_path;
}

}  // namespace obs
}  // namespace urcl
