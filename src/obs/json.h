// Tiny JSON emission helpers shared by the observability exporters (Chrome
// trace, metrics snapshot, profiler table) and the examples' JSONL training
// logs. Emission only — parsing lives in the tests that validate exports.
#ifndef URCL_OBS_JSON_H_
#define URCL_OBS_JSON_H_

#include <cmath>
#include <cstdio>
#include <string>

namespace urcl {
namespace obs {

// Escapes `s` for inclusion inside a double-quoted JSON string.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// A double formatted as a JSON number (JSON has no Inf/NaN; they become null).
inline std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string JsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += JsonEscape(s);
  out += '"';
  return out;
}

}  // namespace obs
}  // namespace urcl

#endif  // URCL_OBS_JSON_H_
