// Thread-safe metrics registry: named counters, gauges and fixed-bucket
// histograms, snapshotable to JSON and Prometheus text exposition format.
//
// Hot-path cost model:
//  - Counter::Add / Histogram::Observe touch one relaxed atomic in a striped
//    shard picked by a thread-local slot index, so concurrent writers from
//    the thread pool do not bounce a shared cache line;
//  - Gauge::Set is a relaxed store, Gauge::Add a CAS loop (gauges mirror
//    state like live bytes, updated under the owner's own lock anyway);
//  - registry lookups (GetCounter etc.) take a mutex and are meant for
//    initialization: instrumentation sites cache the returned reference
//    (the objects live for the process lifetime and are never removed).
//
// The registry itself is always available; whether a subsystem *publishes*
// into it is gated by obs::MetricsEnabled() at the instrumentation site,
// except for the always-on residents (the tensor pool's counters, which
// predate this layer and remain the source of truth for PoolStats).
#ifndef URCL_OBS_METRICS_H_
#define URCL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/obs.h"

namespace urcl {
namespace obs {

namespace internal {

inline constexpr size_t kShards = 8;  // power of two

// Stable per-thread shard slot; distinct threads spread over the stripes.
inline size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index & (kShards - 1);
}

struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

// Monotonic event count. Resettable so tests and benchmarks can measure
// deltas over a window they control.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(uint64_t n = 1) {
    cells_[internal::ThreadShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const auto& cell : cells_) sum += cell.value.load(std::memory_order_relaxed);
    return sum;
  }
  void Reset() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::array<internal::ShardCell, internal::kShards> cells_;
};

// Point-in-time value (occupancy, live bytes, last loss). Not reset by
// MetricsRegistry::ResetCounters — gauges mirror state owned elsewhere.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are inclusive upper bucket edges in
// ascending order; an implicit +Inf bucket catches the rest.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);

  void Observe(double v);

  struct Snapshot {
    std::vector<double> bounds;           // upper edges, ascending
    std::vector<uint64_t> bucket_counts;  // bounds.size() + 1 (last = +Inf)
    double sum = 0.0;
    uint64_t count = 0;
  };
  Snapshot Snap() const;
  void Reset();

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<double> sum{0.0};
    std::atomic<uint64_t> count{0};
  };

  std::string name_;
  std::vector<double> bounds_;
  std::array<Shard, internal::kShards> shards_;
};

// Prometheus-style exponential bucket edges: start, start*factor, ... (count
// edges). For nanosecond histograms use e.g. ExponentialBuckets(1e3, 4, 12).
std::vector<double> ExponentialBuckets(double start, double factor, int count);

namespace internal {

// Maps a metric or label name onto the Prometheus charset [a-zA-Z0-9_:]
// (label names additionally may not hold ':'; callers pass colon-free keys).
std::string PromSanitizeName(const std::string& name);

// Escapes a label value for the text exposition format: backslash, double
// quote and newline become \\ \" \n.
std::string PromEscapeLabelValue(const std::string& value);

}  // namespace internal

// Builds a registry series name carrying Prometheus-style labels:
// `base{key="value",...}`. Label keys are sanitized and values escaped here,
// at construction, so the exporter can render the label block verbatim and
// arbitrary values (including '\n', '"' and '\\') round-trip; the JSON
// exporter sees the same decorated name as an opaque key. Works with
// GetCounter/GetGauge/GetHistogram — each distinct label set is its own
// series.
std::string LabeledName(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels);

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
};

class MetricsRegistry {
 public:
  // Process-wide instance (leaked, like the BufferPool, so instrumented
  // statics may publish during teardown).
  static MetricsRegistry& Get();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the metric with this name, creating it on first use. References
  // stay valid for the process lifetime. A histogram's bounds are fixed by
  // the first caller; later callers get the existing instance.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name, const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;

  // Exposition formats. JSON: {"counters":{...},"gauges":{...},
  // "histograms":{name:{"bounds":[...],"counts":[...],"sum":s,"count":n}}}.
  // Prometheus: text format v0.0.4 ('.' in names becomes '_').
  std::string ToJson() const;
  std::string ToPrometheus() const;

  // Zeroes every counter and histogram (gauges mirror external state and are
  // left alone). For stats windows in tests and benchmarks.
  void ResetCounters();

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ URCL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ URCL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ URCL_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace urcl

#endif  // URCL_OBS_METRICS_H_
