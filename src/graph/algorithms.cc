#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace urcl {
namespace graph {

std::vector<int64_t> BfsHopDistance(const SensorNetwork& graph, int64_t source) {
  URCL_CHECK(source >= 0 && source < graph.num_nodes());
  std::vector<int64_t> distance(static_cast<size_t>(graph.num_nodes()), -1);
  std::queue<int64_t> frontier;
  distance[static_cast<size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int64_t node = frontier.front();
    frontier.pop();
    for (const auto& [next, weight] : graph.Neighbors(node)) {
      if (distance[static_cast<size_t>(next)] < 0) {
        distance[static_cast<size_t>(next)] = distance[static_cast<size_t>(node)] + 1;
        frontier.push(next);
      }
    }
  }
  return distance;
}

std::vector<int64_t> RandomWalkNodes(const SensorNetwork& graph, int64_t start,
                                     int64_t walk_length, Rng& rng) {
  URCL_CHECK(start >= 0 && start < graph.num_nodes());
  URCL_CHECK_GE(walk_length, 0);
  std::vector<bool> visited(static_cast<size_t>(graph.num_nodes()), false);
  std::vector<int64_t> nodes;
  auto visit = [&](int64_t node) {
    if (!visited[static_cast<size_t>(node)]) {
      visited[static_cast<size_t>(node)] = true;
      nodes.push_back(node);
    }
  };
  visit(start);
  int64_t current = start;
  for (int64_t step = 0; step < walk_length; ++step) {
    const auto& neighbors = graph.Neighbors(current);
    if (neighbors.empty()) {
      current = start;  // dead end: restart
      continue;
    }
    current = neighbors[static_cast<size_t>(
                            rng.UniformInt(0, static_cast<int64_t>(neighbors.size()) - 1))]
                  .first;
    visit(current);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

std::vector<std::pair<int64_t, int64_t>> DistantNodePairs(const SensorNetwork& graph,
                                                          int64_t min_hops) {
  URCL_CHECK_GE(min_hops, 1);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t i = 0; i < graph.num_nodes(); ++i) {
    const std::vector<int64_t> distance = BfsHopDistance(graph, i);
    for (int64_t j = i + 1; j < graph.num_nodes(); ++j) {
      const int64_t d = distance[static_cast<size_t>(j)];
      if (d < 0 || d >= min_hops) pairs.emplace_back(i, j);
    }
  }
  return pairs;
}

int64_t CountConnectedComponents(const SensorNetwork& graph) {
  std::vector<bool> seen(static_cast<size_t>(graph.num_nodes()), false);
  int64_t components = 0;
  for (int64_t start = 0; start < graph.num_nodes(); ++start) {
    if (seen[static_cast<size_t>(start)]) continue;
    ++components;
    std::queue<int64_t> frontier;
    frontier.push(start);
    seen[static_cast<size_t>(start)] = true;
    while (!frontier.empty()) {
      const int64_t node = frontier.front();
      frontier.pop();
      for (const auto& [next, weight] : graph.Neighbors(node)) {
        if (!seen[static_cast<size_t>(next)]) {
          seen[static_cast<size_t>(next)] = true;
          frontier.push(next);
        }
      }
    }
  }
  return components;
}

}  // namespace graph
}  // namespace urcl
