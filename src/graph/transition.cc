#include "graph/transition.h"

#include <cmath>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace graph {

Tensor AddSelfLoops(const Tensor& adjacency) {
  URCL_CHECK_EQ(adjacency.rank(), 2);
  URCL_CHECK_EQ(adjacency.dim(0), adjacency.dim(1));
  return ops::Add(adjacency, Tensor::Eye(adjacency.dim(0)));
}

Tensor RowNormalize(const Tensor& matrix) {
  URCL_CHECK_EQ(matrix.rank(), 2);
  const int64_t n = matrix.dim(0);
  Tensor result = matrix.Clone();
  float* p = result.mutable_data();
  for (int64_t i = 0; i < n; ++i) {
    float row_sum = 0.0f;
    for (int64_t j = 0; j < matrix.dim(1); ++j) row_sum += p[i * matrix.dim(1) + j];
    if (row_sum <= 0.0f) {
      // Degenerate row: make it an identity step so the walk stays in place.
      for (int64_t j = 0; j < matrix.dim(1); ++j) p[i * matrix.dim(1) + j] = (i == j) ? 1.0f : 0.0f;
    } else {
      for (int64_t j = 0; j < matrix.dim(1); ++j) p[i * matrix.dim(1) + j] /= row_sum;
    }
  }
  return result;
}

Tensor ForwardTransition(const SensorNetwork& graph) {
  return RowNormalize(AddSelfLoops(graph.AdjacencyMatrix()));
}

Tensor BackwardTransition(const SensorNetwork& graph) {
  return RowNormalize(ops::TransposeLast2(AddSelfLoops(graph.AdjacencyMatrix())));
}

std::vector<Tensor> BuildSupports(const SensorNetwork& graph) {
  if (graph.directed()) return {ForwardTransition(graph), BackwardTransition(graph)};
  return {ForwardTransition(graph)};
}

Tensor ForwardTransitionDense(const Tensor& adjacency) {
  return RowNormalize(AddSelfLoops(adjacency));
}

Tensor BackwardTransitionDense(const Tensor& adjacency) {
  return RowNormalize(ops::TransposeLast2(AddSelfLoops(adjacency)));
}

std::vector<Tensor> BuildSupportsDense(const Tensor& adjacency, bool directed) {
  if (directed) return {ForwardTransitionDense(adjacency), BackwardTransitionDense(adjacency)};
  return {ForwardTransitionDense(adjacency)};
}

Tensor NormalizedLaplacian(const Tensor& adjacency) {
  URCL_CHECK_EQ(adjacency.rank(), 2);
  const int64_t n = adjacency.dim(0);
  URCL_CHECK_EQ(n, adjacency.dim(1));
  // D^{-1/2}
  std::vector<float> inv_sqrt_degree(static_cast<size_t>(n), 0.0f);
  const float* pa = adjacency.data();
  for (int64_t i = 0; i < n; ++i) {
    float degree = 0.0f;
    for (int64_t j = 0; j < n; ++j) degree += pa[i * n + j];
    inv_sqrt_degree[static_cast<size_t>(i)] =
        degree > 1e-9f ? 1.0f / std::sqrt(degree) : 0.0f;
  }
  Tensor laplacian = Tensor::Eye(n);
  float* pl = laplacian.mutable_data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      pl[i * n + j] -= inv_sqrt_degree[static_cast<size_t>(i)] * pa[i * n + j] *
                       inv_sqrt_degree[static_cast<size_t>(j)];
    }
  }
  return laplacian;
}

std::vector<Tensor> ChebyshevSupports(const Tensor& adjacency, int64_t order) {
  URCL_CHECK_GE(order, 1);
  // Scaled Laplacian with lambda_max approximated by 2: L~ = L - I.
  const Tensor scaled =
      ops::Sub(NormalizedLaplacian(adjacency), Tensor::Eye(adjacency.dim(0)));
  std::vector<Tensor> supports;
  Tensor t_prev = Tensor::Eye(adjacency.dim(0));  // T_0
  Tensor t_curr = scaled;                         // T_1
  supports.push_back(t_curr);
  for (int64_t k = 2; k <= order; ++k) {
    // T_k = 2 L~ T_{k-1} - T_{k-2}
    Tensor t_next = ops::Sub(ops::MulScalar(ops::MatMul(scaled, t_curr), 2.0f), t_prev);
    supports.push_back(t_next);
    t_prev = t_curr;
    t_curr = t_next;
  }
  return supports;
}

}  // namespace graph
}  // namespace urcl
