// The sensor network G = (V, E) of Definition 1: a weighted (optionally
// directed) graph over sensor nodes, with optional planar coordinates used by
// the synthetic data generator and distance-based edge weights (Eq. 20).
#ifndef URCL_GRAPH_SENSOR_NETWORK_H_
#define URCL_GRAPH_SENSOR_NETWORK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace urcl {
namespace graph {

struct Edge {
  int64_t src = 0;
  int64_t dst = 0;
  float weight = 0.0f;
};

class SensorNetwork {
 public:
  explicit SensorNetwork(int64_t num_nodes, bool directed = false);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  bool directed() const { return directed_; }

  // Adds an edge (both directions when the graph is undirected).
  void AddEdge(int64_t src, int64_t dst, float weight);

  bool HasEdge(int64_t src, int64_t dst) const;
  float EdgeWeight(int64_t src, int64_t dst) const;  // 0 when absent

  // Out-neighbors of `node` with weights.
  const std::vector<std::pair<int64_t, float>>& Neighbors(int64_t node) const;

  // All stored directed edges (for undirected graphs each edge appears twice).
  const std::vector<Edge>& edges() const { return edges_; }

  // Dense weighted adjacency matrix [N, N].
  Tensor AdjacencyMatrix() const;

  // Optional planar coordinates (used by generators / synthetic data).
  void SetPosition(int64_t node, float x, float y);
  bool has_positions() const { return !positions_.empty(); }
  std::pair<float, float> Position(int64_t node) const;

  // Euclidean distance between node positions (requires positions).
  float Distance(int64_t a, int64_t b) const;

 private:
  int64_t num_nodes_;
  bool directed_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::pair<int64_t, float>>> adjacency_;
  std::vector<std::pair<float, float>> positions_;
};

}  // namespace graph
}  // namespace urcl

#endif  // URCL_GRAPH_SENSOR_NETWORK_H_
