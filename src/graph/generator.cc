#include "graph/generator.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace urcl {
namespace graph {

SensorNetwork RandomGeometricGraph(int64_t num_nodes, float radius, Rng& rng) {
  URCL_CHECK_GT(num_nodes, 1);
  URCL_CHECK_GT(radius, 0.0f);
  SensorNetwork graph(num_nodes, /*directed=*/false);
  std::vector<std::pair<float, float>> points;
  points.reserve(static_cast<size_t>(num_nodes));
  for (int64_t i = 0; i < num_nodes; ++i) {
    points.emplace_back(rng.Uniform(), rng.Uniform());
    graph.SetPosition(i, points.back().first, points.back().second);
  }
  auto dist = [&](int64_t a, int64_t b) {
    return std::hypot(
        points[static_cast<size_t>(a)].first - points[static_cast<size_t>(b)].first,
        points[static_cast<size_t>(a)].second - points[static_cast<size_t>(b)].second);
  };
  for (int64_t i = 0; i < num_nodes; ++i) {
    bool connected = false;
    for (int64_t j = 0; j < i; ++j) {
      const float d = dist(i, j);
      if (d <= radius) {
        graph.AddEdge(i, j, 1.0f / std::max(d, 1e-3f));
        connected = true;
      }
    }
    if (!connected && i > 0) {
      // Chain to the nearest earlier node so the graph stays connected.
      int64_t nearest = 0;
      float best = std::numeric_limits<float>::infinity();
      for (int64_t j = 0; j < i; ++j) {
        const float d = dist(i, j);
        if (d < best) {
          best = d;
          nearest = j;
        }
      }
      graph.AddEdge(i, nearest, 1.0f / std::max(best, 1e-3f));
    }
  }
  return graph;
}

SensorNetwork GridGraph(int64_t rows, int64_t cols) {
  URCL_CHECK_GT(rows, 0);
  URCL_CHECK_GT(cols, 0);
  URCL_CHECK_GT(rows * cols, 1);
  SensorNetwork graph(rows * cols, /*directed=*/false);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t node = r * cols + c;
      graph.SetPosition(node, static_cast<float>(c), static_cast<float>(r));
      if (c + 1 < cols) graph.AddEdge(node, node + 1, 1.0f);
      if (r + 1 < rows) graph.AddEdge(node, node + cols, 1.0f);
    }
  }
  return graph;
}

SensorNetwork RingGraph(int64_t num_nodes) {
  URCL_CHECK_GT(num_nodes, 2);
  SensorNetwork graph(num_nodes, /*directed=*/false);
  const float pi = 3.14159265358979323846f;
  for (int64_t i = 0; i < num_nodes; ++i) {
    const float angle = 2.0f * pi * static_cast<float>(i) / static_cast<float>(num_nodes);
    graph.SetPosition(i, std::cos(angle), std::sin(angle));
    graph.AddEdge(i, (i + 1) % num_nodes, 1.0f);
  }
  return graph;
}

}  // namespace graph
}  // namespace urcl
