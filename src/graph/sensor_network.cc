#include "graph/sensor_network.h"

#include <cmath>

#include "common/check.h"

namespace urcl {
namespace graph {

SensorNetwork::SensorNetwork(int64_t num_nodes, bool directed)
    : num_nodes_(num_nodes), directed_(directed), adjacency_(static_cast<size_t>(num_nodes)) {
  URCL_CHECK_GT(num_nodes, 0);
}

void SensorNetwork::AddEdge(int64_t src, int64_t dst, float weight) {
  URCL_CHECK(src >= 0 && src < num_nodes_ && dst >= 0 && dst < num_nodes_)
      << "edge (" << src << ", " << dst << ") out of range";
  URCL_CHECK_NE(src, dst) << "self loops are added implicitly by normalization";
  edges_.push_back({src, dst, weight});
  adjacency_[static_cast<size_t>(src)].emplace_back(dst, weight);
  if (!directed_) {
    edges_.push_back({dst, src, weight});
    adjacency_[static_cast<size_t>(dst)].emplace_back(src, weight);
  }
}

bool SensorNetwork::HasEdge(int64_t src, int64_t dst) const {
  for (const auto& [node, weight] : Neighbors(src)) {
    if (node == dst) return true;
  }
  return false;
}

float SensorNetwork::EdgeWeight(int64_t src, int64_t dst) const {
  for (const auto& [node, weight] : Neighbors(src)) {
    if (node == dst) return weight;
  }
  return 0.0f;
}

const std::vector<std::pair<int64_t, float>>& SensorNetwork::Neighbors(int64_t node) const {
  URCL_CHECK(node >= 0 && node < num_nodes_);
  return adjacency_[static_cast<size_t>(node)];
}

Tensor SensorNetwork::AdjacencyMatrix() const {
  Tensor a(Shape{num_nodes_, num_nodes_});
  float* pa = a.mutable_data();
  for (const Edge& e : edges_) pa[e.src * num_nodes_ + e.dst] = e.weight;
  return a;
}

void SensorNetwork::SetPosition(int64_t node, float x, float y) {
  URCL_CHECK(node >= 0 && node < num_nodes_);
  if (positions_.empty()) positions_.resize(static_cast<size_t>(num_nodes_), {0.0f, 0.0f});
  positions_[static_cast<size_t>(node)] = {x, y};
}

std::pair<float, float> SensorNetwork::Position(int64_t node) const {
  URCL_CHECK(has_positions()) << "graph has no positions";
  URCL_CHECK(node >= 0 && node < num_nodes_);
  return positions_[static_cast<size_t>(node)];
}

float SensorNetwork::Distance(int64_t a, int64_t b) const {
  const auto [ax, ay] = Position(a);
  const auto [bx, by] = Position(b);
  return std::hypot(ax - bx, ay - by);
}

}  // namespace graph
}  // namespace urcl
