// Transition matrices for diffusion convolution: P^f = A~/rowsum(A~) and
// P^b = A~^T/rowsum(A~^T), where A~ = A + I (self connections), per the
// DCRNN/GraphWaveNet formulation the paper adopts (Eq. 21-22).
#ifndef URCL_GRAPH_TRANSITION_H_
#define URCL_GRAPH_TRANSITION_H_

#include <vector>

#include "graph/sensor_network.h"
#include "tensor/tensor.h"

namespace urcl {
namespace graph {

// A + I for a dense adjacency.
Tensor AddSelfLoops(const Tensor& adjacency);

// Row-normalizes a non-negative matrix; zero rows become a self-only step.
Tensor RowNormalize(const Tensor& matrix);

// Forward random-walk transition P^f from a sensor network.
Tensor ForwardTransition(const SensorNetwork& graph);

// Backward random-walk transition P^b (transpose dynamics).
Tensor BackwardTransition(const SensorNetwork& graph);

// The support set used by the diffusion GCN: {P^f, P^b} for directed graphs,
// {P} for undirected ones (forward == backward, deduplicated).
std::vector<Tensor> BuildSupports(const SensorNetwork& graph);

// Dense-adjacency variants, used when augmentations perturb the adjacency
// matrix directly. `directed` controls whether {P^f, P^b} or {P} is built.
Tensor ForwardTransitionDense(const Tensor& adjacency);
Tensor BackwardTransitionDense(const Tensor& adjacency);
std::vector<Tensor> BuildSupportsDense(const Tensor& adjacency, bool directed);

// Symmetrically normalized Laplacian L = I - D^{-1/2} (A) D^{-1/2}.
Tensor NormalizedLaplacian(const Tensor& adjacency);

// Chebyshev polynomial supports {T_1(L~), ..., T_order(L~)} of the scaled
// Laplacian L~ = L - I (lambda_max ~= 2), as used by ChebNet/STGCN. The
// T_0 = I term is the identity term the diffusion GCN includes implicitly.
std::vector<Tensor> ChebyshevSupports(const Tensor& adjacency, int64_t order);

}  // namespace graph
}  // namespace urcl

#endif  // URCL_GRAPH_TRANSITION_H_
