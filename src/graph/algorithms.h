// Graph algorithms used by the augmentation methods and tests: BFS hop
// distances (AddEdge's "distant node pairs"), random-walk subgraph sampling
// (SubGraph), and connectivity checks.
#ifndef URCL_GRAPH_ALGORITHMS_H_
#define URCL_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/sensor_network.h"

namespace urcl {
namespace graph {

// Hop distance from `source` to every node (-1 = unreachable).
std::vector<int64_t> BfsHopDistance(const SensorNetwork& graph, int64_t source);

// Nodes visited by a random walk of `walk_length` steps from `start`
// (deduplicated, includes `start`). Walks restart at `start` on dead ends.
std::vector<int64_t> RandomWalkNodes(const SensorNetwork& graph, int64_t start,
                                     int64_t walk_length, Rng& rng);

// All unordered node pairs at hop distance >= min_hops (AddEdge candidates).
std::vector<std::pair<int64_t, int64_t>> DistantNodePairs(const SensorNetwork& graph,
                                                          int64_t min_hops);

// Number of weakly connected components.
int64_t CountConnectedComponents(const SensorNetwork& graph);

}  // namespace graph
}  // namespace urcl

#endif  // URCL_GRAPH_ALGORITHMS_H_
