// Sensor-network generators. RandomGeometricGraph mirrors how real road
// networks are turned into graphs: nodes have coordinates and nearby nodes
// are connected with weight 1/distance (the paper's Eq. 20).
#ifndef URCL_GRAPH_GENERATOR_H_
#define URCL_GRAPH_GENERATOR_H_

#include "common/rng.h"
#include "graph/sensor_network.h"

namespace urcl {
namespace graph {

// Nodes uniformly in the unit square; edges between nodes within `radius`,
// weight 1/dist. Guarantees connectivity by chaining each node to its
// nearest already-placed neighbor if isolated.
SensorNetwork RandomGeometricGraph(int64_t num_nodes, float radius, Rng& rng);

// rows x cols lattice with unit-distance edges (weight 1).
SensorNetwork GridGraph(int64_t rows, int64_t cols);

// Cycle of n nodes (weight 1).
SensorNetwork RingGraph(int64_t num_nodes);

}  // namespace graph
}  // namespace urcl

#endif  // URCL_GRAPH_GENERATOR_H_
