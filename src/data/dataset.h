// Windowed spatio-temporal datasets (Definitions 2-3): a series of
// observations X_t in R^{N x C} turned into (M input, N_out output) samples
// for the SSTP problem (Eq. 1).
#ifndef URCL_DATA_DATASET_H_
#define URCL_DATA_DATASET_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace urcl {
namespace data {

// One supervised sample: M input observations and N_out target observations
// of the target channel.
struct StSample {
  Tensor inputs;   // [M, N, C]
  Tensor targets;  // [N_out, N, 1]
  int64_t time_slot = 0;  // stream index of the last input observation
};

struct WindowConfig {
  int64_t input_steps = 12;    // M
  int64_t output_steps = 1;    // N_out
  int64_t target_channel = 0;  // which feature is predicted
};

// Wraps a contiguous series [T, N, C] and serves sliding-window samples.
class StDataset {
 public:
  StDataset(Tensor series, WindowConfig config);

  int64_t NumSamples() const;
  int64_t num_nodes() const { return series_.dim(1); }
  int64_t num_channels() const { return series_.dim(2); }
  int64_t num_steps() const { return series_.dim(0); }
  const WindowConfig& config() const { return config_; }
  const Tensor& series() const { return series_; }

  StSample GetSample(int64_t index) const;

  // Batches samples `indices` into ([B, M, N, C], [B, N_out, N, 1]).
  std::pair<Tensor, Tensor> MakeBatch(const std::vector<int64_t>& indices) const;

  // Contiguous sub-dataset covering series rows [start, start+length).
  StDataset Slice(int64_t start, int64_t length) const;

 private:
  Tensor series_;  // [T, N, C]
  WindowConfig config_;
};

}  // namespace data
}  // namespace urcl

#endif  // URCL_DATA_DATASET_H_
