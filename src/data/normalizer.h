// Feature normalization. The paper normalizes streaming data into [0, 1]
// (Sec. V-A4); a z-score normalizer is provided as an alternative.
#ifndef URCL_DATA_NORMALIZER_H_
#define URCL_DATA_NORMALIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace urcl {
namespace data {

// Per-channel min-max scaling to [0, 1]. Channels are the last axis.
class MinMaxNormalizer {
 public:
  // Fits per-channel min/max over all other axes of `series` [..., C].
  static MinMaxNormalizer Fit(const Tensor& series);

  // (x - min_c) / (max_c - min_c), applied per trailing channel.
  Tensor Transform(const Tensor& data) const;

  // Inverse for full multi-channel data.
  Tensor InverseTransform(const Tensor& data) const;

  // Inverse for single-channel data (e.g. predictions of `channel`).
  Tensor InverseTransformChannel(const Tensor& data, int64_t channel) const;

  int64_t num_channels() const { return static_cast<int64_t>(mins_.size()); }
  float min(int64_t channel) const { return mins_.at(static_cast<size_t>(channel)); }
  float max(int64_t channel) const { return maxs_.at(static_cast<size_t>(channel)); }

 private:
  std::vector<float> mins_;
  std::vector<float> maxs_;
};

// Per-channel standardization to zero mean / unit variance.
class ZScoreNormalizer {
 public:
  static ZScoreNormalizer Fit(const Tensor& series);

  Tensor Transform(const Tensor& data) const;
  Tensor InverseTransformChannel(const Tensor& data, int64_t channel) const;

  float mean(int64_t channel) const { return means_.at(static_cast<size_t>(channel)); }
  float stddev(int64_t channel) const { return stds_.at(static_cast<size_t>(channel)); }

 private:
  std::vector<float> means_;
  std::vector<float> stds_;
};

}  // namespace data
}  // namespace urcl

#endif  // URCL_DATA_NORMALIZER_H_
