// Named dataset presets mirroring Table I of the paper at configurable scale.
// The synthetic generator stands in for the real archives (see DESIGN.md);
// each preset reproduces the dataset's channel semantics, sampling interval,
// prediction target and window sizes.
#ifndef URCL_DATA_PRESETS_H_
#define URCL_DATA_PRESETS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace urcl {
namespace data {

struct DatasetPreset {
  std::string name;
  std::string area;
  int64_t paper_num_nodes = 0;    // node count in the real dataset
  int64_t sampling_interval_min = 15;
  int64_t channels = 2;           // channel 0 speed, 1 flow, 2 occupancy
  int64_t input_steps = 12;       // M
  int64_t output_steps = 1;       // N
  bool speed_target = true;       // true: predict speed; false: predict flow

  // Per-preset synthetic characteristics so the four streams are distinct
  // (different regions have different free-flow speeds, noise levels,
  // incident rates and road topologies).
  float free_flow_speed = 65.0f;
  float max_flow = 500.0f;
  float noise_std = 1.0f;
  float incident_rate = 0.02f;
  float graph_radius = 0.35f;
  uint64_t seed_offset = 0;

  // Traffic config for a scaled-down instance with the preset's semantics.
  // Abrupt drift is placed at the base/incremental boundaries so the stream
  // exhibits the concept drift the paper's evaluation relies on.
  TrafficConfig MakeTrafficConfig(int64_t num_nodes, int64_t num_days, uint64_t seed) const;

  WindowConfig MakeWindowConfig() const;
};

DatasetPreset MetrLaPreset();
DatasetPreset PemsBayPreset();
DatasetPreset Pems04Preset();
DatasetPreset Pems08Preset();
std::vector<DatasetPreset> AllPresets();

}  // namespace data
}  // namespace urcl

#endif  // URCL_DATA_PRESETS_H_
