// Synthetic streaming traffic generator. Substitutes for the proprietary
// METR-LA / PEMS archives (see DESIGN.md): produces speed / flow / occupancy
// series on a sensor network with daily & weekly periodicity, rush-hour
// congestion that diffuses along graph edges, sensor noise, incidents, and
// controllable concept drift (gradual and abrupt) — the phenomena that drive
// the paper's streaming evaluation.
#ifndef URCL_DATA_SYNTHETIC_H_
#define URCL_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/sensor_network.h"
#include "tensor/tensor.h"

namespace urcl {
namespace data {

struct TrafficConfig {
  int64_t num_nodes = 24;
  int64_t num_days = 20;
  int64_t steps_per_day = 96;  // 96 = 15-minute sampling interval
  // Channel 0 is always speed; channel 1 flow; channel 2 occupancy.
  int64_t channels = 2;
  float free_flow_speed = 65.0f;  // speed scale (paper datasets are in mph)
  float max_flow = 500.0f;        // flow scale (vehicles / interval)
  float noise_std = 1.0f;         // additive sensor noise on speed
  float incident_rate = 0.02f;    // expected incidents per node per day
  float graph_radius = 0.35f;     // geometric-graph connection radius

  // Gradual drift: per-day shift of the rush-hour phase (in steps) and
  // per-day multiplicative demand growth.
  float phase_drift_per_day = 0.0f;
  float demand_growth_per_day = 0.0f;
  // Abrupt drift: at each listed day boundary, a fraction of node demand
  // factors is re-drawn and the rush-hour phase jumps.
  std::vector<int64_t> abrupt_drift_days;
  float abrupt_refresh_fraction = 0.5f;
  float abrupt_phase_jump_steps = 6.0f;
  // Dynamics drift: at each abrupt boundary, also re-draw the *regime* — the
  // autoregressive coefficients that govern how congestion propagates
  // (inertia, neighbor coupling, demand response), the speed-congestion
  // response coefficient and the flow scale. Because congestion is a
  // simulated AR state, this changes the conditional distribution
  // P(X_{t+1} | window): stale models make systematic one-step errors
  // (marginal drift alone barely affects one-step forecasting).
  bool drift_dynamics = true;
  // Scales how far the regime parameters may move at each abrupt boundary
  // (1.0 = the default ranges; larger = stronger concept drift).
  float regime_drift_scale = 1.0f;

  uint64_t seed = 7;
};

// Generates the graph once and then the full series deterministically.
class SyntheticTraffic {
 public:
  explicit SyntheticTraffic(const TrafficConfig& config);

  const graph::SensorNetwork& network() const { return network_; }
  const TrafficConfig& config() const { return config_; }

  // Full series [T, N, C] with T = num_days * steps_per_day. When the
  // process-wide FaultInjector has input-fault rates configured (URCL_FAULT),
  // ApplyInputFaults is run on the result before it is returned.
  Tensor GenerateSeries();

  // Underlying congestion level in [0, 1] for one (day, step, node); exposed
  // for tests and for inspecting drift behaviour.
  float CongestionAt(int64_t day, int64_t step, int64_t node) const;

 private:
  float DemandAt(int64_t day, int64_t step, int64_t node) const;

  // Simulates the congestion state field for all (t, node) once.
  void SimulateCongestion();

  TrafficConfig config_;
  graph::SensorNetwork network_;
  std::vector<float> node_factor_;          // per-node demand multiplier
  std::vector<std::vector<float>> factor_by_day_;  // node factors after drift, per day
  std::vector<float> phase_by_day_;         // rush-hour phase offset per day (steps)
  std::vector<float> amplitude_by_day_;     // demand amplitude per day
  // Regime (dynamics) parameters per day — see drift_dynamics.
  std::vector<float> inertia_by_day_;       // AR(1) self coefficient
  std::vector<float> coupling_by_day_;      // neighbor coupling coefficient
  std::vector<float> speed_coef_by_day_;    // speed drop per unit congestion
  std::vector<float> flow_scale_by_day_;    // flow magnitude multiplier
  std::vector<float> congestion_;           // [T * N] simulated state field
  // incident map: day -> list of (node, start_step, duration, severity)
  struct Incident {
    int64_t node;
    int64_t start_step;
    int64_t duration;
    float severity;
  };
  std::vector<std::vector<Incident>> incidents_by_day_;
};

// Corrupts a [T, N, C] series in place according to the process-wide
// FaultInjector's rates: `nan`/`inf` poison individual cells, `drop` blanks
// every channel of a (t, node) reading (a dead sensor). No-op when no rates
// are configured. Used by GenerateSeries and available to CSV-based loaders.
void ApplyInputFaults(Tensor* series);

}  // namespace data
}  // namespace urcl

#endif  // URCL_DATA_SYNTHETIC_H_
