#include "data/dataset.h"

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace urcl {
namespace data {

StDataset::StDataset(Tensor series, WindowConfig config)
    : series_(std::move(series)), config_(config) {
  URCL_CHECK_EQ(series_.rank(), 3) << "series must be [T, N, C]";
  URCL_CHECK_GT(config_.input_steps, 0);
  URCL_CHECK_GT(config_.output_steps, 0);
  URCL_CHECK(config_.target_channel >= 0 && config_.target_channel < series_.dim(2))
      << "target channel " << config_.target_channel << " out of range";
}

int64_t StDataset::NumSamples() const {
  const int64_t usable = series_.dim(0) - config_.input_steps - config_.output_steps + 1;
  return usable > 0 ? usable : 0;
}

StSample StDataset::GetSample(int64_t index) const {
  URCL_CHECK(index >= 0 && index < NumSamples())
      << "sample index " << index << " out of range (" << NumSamples() << ")";
  const int64_t n = series_.dim(1);
  const int64_t c = series_.dim(2);
  StSample sample;
  sample.inputs = ops::Slice(series_, {index, 0, 0}, {config_.input_steps, n, c});
  sample.targets = ops::Slice(series_, {index + config_.input_steps, 0, config_.target_channel},
                              {config_.output_steps, n, 1});
  sample.time_slot = index + config_.input_steps - 1;
  return sample;
}

std::pair<Tensor, Tensor> StDataset::MakeBatch(const std::vector<int64_t>& indices) const {
  URCL_CHECK(!indices.empty());
  std::vector<Tensor> xs;
  std::vector<Tensor> ys;
  xs.reserve(indices.size());
  ys.reserve(indices.size());
  for (const int64_t index : indices) {
    StSample sample = GetSample(index);
    xs.push_back(std::move(sample.inputs));
    ys.push_back(std::move(sample.targets));
  }
  return {ops::Stack(xs, 0), ops::Stack(ys, 0)};
}

StDataset StDataset::Slice(int64_t start, int64_t length) const {
  URCL_CHECK(start >= 0 && length > 0 && start + length <= series_.dim(0))
      << "dataset slice [" << start << ", " << start + length << ") out of range";
  Tensor sub = ops::Slice(series_, {start, 0, 0}, {length, series_.dim(1), series_.dim(2)});
  return StDataset(sub, config_);
}

}  // namespace data
}  // namespace urcl
