#include "data/csv_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace urcl {
namespace data {
namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream stream(line);
  std::string cell;
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  return cells;
}

}  // namespace

void ExportSeriesCsv(const Tensor& series, const std::string& path) {
  URCL_CHECK_EQ(series.rank(), 3) << "series must be [T, N, C]";
  std::ofstream out(path);
  URCL_CHECK(out.is_open()) << "cannot open " << path << " for writing";
  const int64_t steps = series.dim(0), nodes = series.dim(1), channels = series.dim(2);
  out << "t,node";
  for (int64_t c = 0; c < channels; ++c) out << ",channel" << c;
  out << '\n';
  for (int64_t t = 0; t < steps; ++t) {
    for (int64_t n = 0; n < nodes; ++n) {
      out << t << ',' << n;
      for (int64_t c = 0; c < channels; ++c) out << ',' << series.At({t, n, c});
      out << '\n';
    }
  }
  URCL_CHECK(out.good()) << "CSV export failed for " << path;
}

Tensor ImportSeriesCsv(const std::string& path) {
  std::ifstream in(path);
  URCL_CHECK(in.is_open()) << "cannot open " << path << " for reading";
  std::string line;
  URCL_CHECK(static_cast<bool>(std::getline(in, line))) << "empty CSV " << path;
  const std::vector<std::string> header = SplitLine(line);
  URCL_CHECK_GE(header.size(), 3u) << "CSV header needs t,node,channel0[,...]";
  URCL_CHECK(header[0] == "t" && header[1] == "node")
      << "unexpected CSV header in " << path;
  const int64_t channels = static_cast<int64_t>(header.size()) - 2;

  std::vector<float> values;
  int64_t steps = 0;
  int64_t nodes = 0;
  int64_t row = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitLine(line);
    URCL_CHECK_EQ(static_cast<int64_t>(cells.size()), channels + 2)
        << "bad CSV row " << row << " in " << path;
    const int64_t t = std::strtoll(cells[0].c_str(), nullptr, 10);
    const int64_t n = std::strtoll(cells[1].c_str(), nullptr, 10);
    if (t == 0) nodes = std::max(nodes, n + 1);
    steps = std::max(steps, t + 1);
    // Enforce grouped-by-t, ordered-by-node layout.
    URCL_CHECK(nodes == 0 || row == t * nodes + n)
        << "CSV rows must be grouped by t and ordered by node (row " << row << ")";
    for (int64_t c = 0; c < channels; ++c) {
      values.push_back(std::strtof(cells[static_cast<size_t>(c) + 2].c_str(), nullptr));
    }
    ++row;
  }
  URCL_CHECK_GT(steps, 0) << "CSV " << path << " has no data rows";
  URCL_CHECK_GT(nodes, 0);
  URCL_CHECK_EQ(row, steps * nodes) << "CSV " << path << " is missing rows";
  return Tensor::FromVector(Shape{steps, nodes, channels}, values);
}

}  // namespace data
}  // namespace urcl
