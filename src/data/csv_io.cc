#include "data/csv_io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace urcl {
namespace data {
namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream stream(line);
  std::string cell;
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  return cells;
}

}  // namespace

void ExportSeriesCsv(const Tensor& series, const std::string& path) {
  URCL_CHECK_EQ(series.rank(), 3) << "series must be [T, N, C]";
  std::ofstream out(path);
  URCL_CHECK(out.is_open()) << "cannot open " << path << " for writing";
  const int64_t steps = series.dim(0), nodes = series.dim(1), channels = series.dim(2);
  out << "t,node";
  for (int64_t c = 0; c < channels; ++c) out << ",channel" << c;
  out << '\n';
  for (int64_t t = 0; t < steps; ++t) {
    for (int64_t n = 0; n < nodes; ++n) {
      out << t << ',' << n;
      for (int64_t c = 0; c < channels; ++c) out << ',' << series.At({t, n, c});
      out << '\n';
    }
  }
  URCL_CHECK(out.good()) << "CSV export failed for " << path;
}

namespace {

// Strict integer parse: the whole cell must be a base-10 integer.
bool ParseIndexCell(const std::string& cell, int64_t* out) {
  if (cell.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(cell.c_str(), &end, 10);
  if (errno != 0 || end != cell.c_str() + cell.size() || v < 0) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

// Strict float parse: the whole cell must be a number (nan/inf allowed here;
// downstream finiteness handling is the trainer's job, not the parser's).
bool ParseValueCell(const std::string& cell, float* out) {
  if (cell.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const float v = std::strtof(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return false;
  (void)errno;  // over/underflow clamps; still a parseable number
  *out = v;
  return true;
}

std::string Where(const std::string& path, int64_t line_number) {
  return path + ":" + std::to_string(line_number);
}

}  // namespace

Status TryImportSeriesCsv(const std::string& path, Tensor* out) {
  URCL_CHECK(out != nullptr);
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::Error("cannot open " + path + " for reading");
  }
  std::string line;
  int64_t line_number = 1;
  if (!std::getline(in, line)) {
    return Status::Error("empty CSV " + path);
  }
  const std::vector<std::string> header = SplitLine(line);
  if (header.size() < 3u) {
    return Status::Error("unexpected CSV header in " + Where(path, line_number) +
                         ": need t,node,channel0[,...], got '" + line + "'");
  }
  if (!(header[0] == "t" && header[1] == "node")) {
    return Status::Error("unexpected CSV header in " + Where(path, line_number) +
                         ": first columns must be 't,node', got '" + line + "'");
  }
  const int64_t channels = static_cast<int64_t>(header.size()) - 2;

  std::vector<float> values;
  int64_t steps = 0;
  int64_t nodes = 0;
  int64_t row = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitLine(line);
    if (static_cast<int64_t>(cells.size()) != channels + 2) {
      return Status::Error("truncated CSV row at " + Where(path, line_number) + ": expected " +
                           std::to_string(channels + 2) + " cells, got " +
                           std::to_string(cells.size()));
    }
    int64_t t = 0, n = 0;
    if (!ParseIndexCell(cells[0], &t)) {
      return Status::Error("non-numeric t cell '" + cells[0] + "' at " +
                           Where(path, line_number));
    }
    if (!ParseIndexCell(cells[1], &n)) {
      return Status::Error("non-numeric node cell '" + cells[1] + "' at " +
                           Where(path, line_number));
    }
    if (t == 0) nodes = std::max(nodes, n + 1);
    steps = std::max(steps, t + 1);
    // Enforce grouped-by-t, ordered-by-node layout.
    if (!(nodes == 0 || row == t * nodes + n)) {
      return Status::Error("CSV rows must be grouped by t and ordered by node (" +
                           Where(path, line_number) + ", data row " + std::to_string(row) + ")");
    }
    for (int64_t c = 0; c < channels; ++c) {
      float value = 0.0f;
      const std::string& cell = cells[static_cast<size_t>(c) + 2];
      if (!ParseValueCell(cell, &value)) {
        return Status::Error("non-numeric cell '" + cell + "' in column channel" +
                             std::to_string(c) + " at " + Where(path, line_number));
      }
      values.push_back(value);
    }
    ++row;
  }
  if (steps <= 0 || nodes <= 0) {
    return Status::Error("CSV " + path + " has no data rows");
  }
  if (row != steps * nodes) {
    return Status::Error("CSV " + path + " is missing rows: header implies " +
                         std::to_string(steps * nodes) + " rows for " + std::to_string(steps) +
                         " steps x " + std::to_string(nodes) + " nodes, found " +
                         std::to_string(row));
  }
  *out = Tensor::FromVector(Shape{steps, nodes, channels}, values);
  return Status::Ok();
}

Tensor ImportSeriesCsv(const std::string& path) {
  Tensor series;
  const Status status = TryImportSeriesCsv(path, &series);
  URCL_CHECK(status.ok()) << status.message();
  return series;
}

}  // namespace data
}  // namespace urcl
