#include "data/presets.h"

#include <cmath>

#include "common/check.h"

namespace urcl {
namespace data {

TrafficConfig DatasetPreset::MakeTrafficConfig(int64_t num_nodes, int64_t num_days,
                                               uint64_t seed) const {
  URCL_CHECK_GT(num_nodes, 1);
  URCL_CHECK_GE(num_days, 5);
  TrafficConfig config;
  config.num_nodes = num_nodes;
  config.num_days = num_days;
  config.steps_per_day = (24 * 60) / sampling_interval_min;
  config.channels = channels;
  config.free_flow_speed = free_flow_speed;
  config.max_flow = max_flow;
  config.noise_std = noise_std;
  config.incident_rate = incident_rate;
  config.graph_radius = graph_radius;
  config.seed = seed + seed_offset;
  // Mild gradual drift everywhere...
  config.phase_drift_per_day = 0.05f;
  config.demand_growth_per_day = 0.004f;
  // ...plus abrupt drift at the B_set / I_set^k boundaries (30% + 4x17.5%).
  const auto day_at = [num_days](double fraction) {
    return static_cast<int64_t>(std::llround(fraction * num_days));
  };
  for (const double boundary : {0.30, 0.475, 0.65, 0.825}) {
    const int64_t day = day_at(boundary);
    if (day > 0 && day < num_days) config.abrupt_drift_days.push_back(day);
  }
  return config;
}

WindowConfig DatasetPreset::MakeWindowConfig() const {
  WindowConfig window;
  window.input_steps = input_steps;
  window.output_steps = output_steps;
  // Channel 0 is speed, channel 1 flow in the synthetic generator.
  window.target_channel = speed_target ? 0 : 1;
  return window;
}

DatasetPreset MetrLaPreset() {
  DatasetPreset preset;
  preset.name = "METR-LA";
  preset.area = "Los Angeles";
  preset.paper_num_nodes = 207;
  preset.sampling_interval_min = 15;
  preset.channels = 2;  // speed + flow
  preset.speed_target = true;
  preset.free_flow_speed = 62.0f;
  preset.noise_std = 1.2f;     // LA sensors are noisier
  preset.incident_rate = 0.03f;
  preset.graph_radius = 0.30f;
  preset.seed_offset = 11;
  return preset;
}

DatasetPreset PemsBayPreset() {
  DatasetPreset preset;
  preset.name = "PEMS-BAY";
  preset.area = "California (Bay Area)";
  preset.paper_num_nodes = 325;
  preset.sampling_interval_min = 15;
  preset.channels = 2;
  preset.speed_target = true;
  preset.free_flow_speed = 70.0f;
  preset.noise_std = 0.8f;
  preset.incident_rate = 0.015f;
  preset.graph_radius = 0.35f;
  preset.seed_offset = 22;
  return preset;
}

DatasetPreset Pems04Preset() {
  DatasetPreset preset;
  preset.name = "PEMS04";
  preset.area = "San Francisco Bay";
  preset.paper_num_nodes = 307;
  preset.sampling_interval_min = 5;
  preset.channels = 3;  // speed + flow + occupancy
  preset.speed_target = false;
  preset.max_flow = 450.0f;
  preset.noise_std = 1.0f;
  preset.graph_radius = 0.40f;
  preset.seed_offset = 33;
  return preset;
}

DatasetPreset Pems08Preset() {
  DatasetPreset preset;
  preset.name = "PEMS08";
  preset.area = "San Bernardino";
  preset.paper_num_nodes = 170;
  preset.sampling_interval_min = 5;
  preset.channels = 3;
  preset.speed_target = false;
  preset.max_flow = 520.0f;
  preset.noise_std = 0.9f;
  preset.incident_rate = 0.025f;
  preset.graph_radius = 0.32f;
  preset.seed_offset = 44;
  return preset;
}

std::vector<DatasetPreset> AllPresets() {
  return {MetrLaPreset(), PemsBayPreset(), Pems04Preset(), Pems08Preset()};
}

}  // namespace data
}  // namespace urcl
