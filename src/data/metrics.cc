#include "data/metrics.h"

#include <cmath>

#include "common/check.h"

namespace urcl {
namespace data {

void MetricsAccumulator::Add(const Tensor& prediction, const Tensor& target) {
  URCL_CHECK(prediction.shape() == target.shape())
      << "metrics shape mismatch: " << prediction.shape().ToString() << " vs "
      << target.shape().ToString();
  const float* pp = prediction.data();
  const float* pt = target.data();
  for (int64_t i = 0; i < prediction.NumElements(); ++i) {
    // A corrupt sensor reading NaNs every prediction whose input window
    // covers it; excluding the pair (and counting it) keeps the aggregate
    // metric meaningful instead of reporting nan for the whole stage.
    if (!std::isfinite(pp[i]) || !std::isfinite(pt[i])) {
      ++non_finite_;
      continue;
    }
    const double err = double(pp[i]) - double(pt[i]);
    abs_sum_ += std::fabs(err);
    sq_sum_ += err * err;
    ++count_;
    if (std::fabs(pt[i]) >= 1.0f) {
      ape_sum_ += std::fabs(err) / std::fabs(pt[i]);
      ++ape_count_;
    }
  }
}

void MetricsAccumulator::Merge(const MetricsAccumulator& other) {
  abs_sum_ += other.abs_sum_;
  sq_sum_ += other.sq_sum_;
  ape_sum_ += other.ape_sum_;
  ape_count_ += other.ape_count_;
  count_ += other.count_;
  non_finite_ += other.non_finite_;
}

EvalMetrics MetricsAccumulator::Result() const {
  URCL_CHECK_GT(count_, 0) << "no finite samples accumulated (" << non_finite_
                           << " non-finite element pair(s) were skipped)";
  EvalMetrics metrics;
  metrics.count = count_;
  metrics.non_finite = non_finite_;
  metrics.mae = abs_sum_ / count_;
  metrics.rmse = std::sqrt(sq_sum_ / count_);
  metrics.mape = ape_count_ > 0 ? 100.0 * ape_sum_ / ape_count_ : 0.0;
  return metrics;
}

void MetricsAccumulator::Reset() { *this = MetricsAccumulator(); }

EvalMetrics ComputeMetrics(const Tensor& prediction, const Tensor& target) {
  MetricsAccumulator accumulator;
  accumulator.Add(prediction, target);
  return accumulator.Result();
}

}  // namespace data
}  // namespace urcl
