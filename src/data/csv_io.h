// CSV import/export for spatio-temporal series, so real datasets (e.g. the
// METR-LA / PEMS archives, which ship as CSV/HDF5 exports) can be brought
// into the pipeline in place of the synthetic generator.
//
// Format: header "t,node,channel0[,channel1,...]" then one row per
// (time step, node) with the channel values; rows must be grouped by t and
// ordered by node within each t.
#ifndef URCL_DATA_CSV_IO_H_
#define URCL_DATA_CSV_IO_H_

#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace urcl {
namespace data {

// Writes a [T, N, C] series to `path`.
void ExportSeriesCsv(const Tensor& series, const std::string& path);

// Reads a series written by ExportSeriesCsv (or produced externally in the
// same layout) into `*out`. On malformed input returns an error naming the
// file and the 1-based line number of the offending row — truncated rows,
// non-numeric cells, out-of-order rows and empty files are all rejected.
// `*out` is only written on success.
Status TryImportSeriesCsv(const std::string& path, Tensor* out);

// Reads a series written by ExportSeriesCsv (or produced externally in the
// same layout). Aborts with a diagnostic on malformed input.
Tensor ImportSeriesCsv(const std::string& path);

}  // namespace data
}  // namespace urcl

#endif  // URCL_DATA_CSV_IO_H_
