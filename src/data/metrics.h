// Evaluation metrics (paper Eq. 30): MAE and RMSE, plus MAPE.
#ifndef URCL_DATA_METRICS_H_
#define URCL_DATA_METRICS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace urcl {
namespace data {

struct EvalMetrics {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;  // in percent; entries with |target| < 1 are skipped
  int64_t count = 0;
  // Element pairs excluded because prediction or target was NaN/Inf (corrupt
  // sensor readings poison whole windows; one bad cell must not NaN the row).
  int64_t non_finite = 0;
};

// Metrics between same-shaped prediction and target tensors.
EvalMetrics ComputeMetrics(const Tensor& prediction, const Tensor& target);

// Streaming accumulation across batches.
class MetricsAccumulator {
 public:
  void Add(const Tensor& prediction, const Tensor& target);
  // Folds another accumulator's sums into this one, as if its Add calls had
  // been made here. Lets the seen-so-far protocol evaluate each stage into
  // its own accumulator (for per-stage forgetting telemetry) and still report
  // the pooled result without a second evaluation pass.
  void Merge(const MetricsAccumulator& other);
  EvalMetrics Result() const;
  void Reset();

 private:
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double ape_sum_ = 0.0;
  int64_t ape_count_ = 0;
  int64_t count_ = 0;
  int64_t non_finite_ = 0;
};

}  // namespace data
}  // namespace urcl

#endif  // URCL_DATA_METRICS_H_
