#include "data/stream.h"

#include "common/check.h"

namespace urcl {
namespace data {

StreamSplitter::StreamSplitter(const StDataset& full, const StreamConfig& config) {
  URCL_CHECK(config.base_fraction > 0.0f && config.base_fraction < 1.0f);
  URCL_CHECK_GE(config.num_incremental, 0);
  URCL_CHECK(config.train_fraction > 0.0f && config.val_fraction >= 0.0f &&
             config.train_fraction + config.val_fraction < 1.0f);

  const int64_t total = full.num_steps();
  const int64_t window = full.config().input_steps + full.config().output_steps;
  const int64_t base_steps = static_cast<int64_t>(total * config.base_fraction);
  const int64_t remaining = total - base_steps;
  const int64_t inc_steps =
      config.num_incremental > 0 ? remaining / config.num_incremental : 0;
  URCL_CHECK_GT(base_steps, 3 * window) << "base set too short for windows";
  if (config.num_incremental > 0) {
    URCL_CHECK_GT(inc_steps, 3 * window) << "incremental sets too short for windows";
  }

  auto make_stage = [&](const std::string& name, int64_t offset, int64_t length) {
    StDataset stage_data = full.Slice(offset, length);
    const int64_t train_len = static_cast<int64_t>(length * config.train_fraction);
    const int64_t val_len = static_cast<int64_t>(length * config.val_fraction);
    const int64_t test_len = length - train_len - val_len;
    URCL_CHECK_GT(train_len, window) << "train split of " << name << " too short";
    URCL_CHECK_GT(test_len, window) << "test split of " << name << " too short";
    StreamStage stage{
        name,
        stage_data.Slice(0, train_len),
        // Guard: val may be tiny; give it at least one window by borrowing
        // from train when configured to zero is not allowed here.
        stage_data.Slice(train_len, val_len > window ? val_len : test_len),
        stage_data.Slice(train_len + val_len, test_len),
        offset,
    };
    if (val_len > window) {
      stage.val = stage_data.Slice(train_len, val_len);
    } else {
      stage.val = stage_data.Slice(train_len + val_len, test_len);  // fall back to test span
    }
    stages_.push_back(std::move(stage));
  };

  make_stage("B_set", 0, base_steps);
  for (int64_t i = 0; i < config.num_incremental; ++i) {
    const int64_t offset = base_steps + i * inc_steps;
    const int64_t length =
        (i + 1 == config.num_incremental) ? total - offset : inc_steps;
    make_stage("I_set" + std::to_string(i + 1), offset, length);
  }
}

const StreamStage& StreamSplitter::Stage(int64_t index) const {
  URCL_CHECK(index >= 0 && index < NumStages());
  return stages_[static_cast<size_t>(index)];
}

}  // namespace data
}  // namespace urcl
