// Continuous-learning stream organisation (Sec. V-A4): the series is split
// into a base set B_set (30%) and k equal incremental sets I_set^1..k that
// arrive sequentially; each set is further split into train/val/test
// (Algorithm 1, lines 2-3).
#ifndef URCL_DATA_STREAM_H_
#define URCL_DATA_STREAM_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace urcl {
namespace data {

// One element D_i of the stream of data sequences.
struct StreamStage {
  std::string name;    // "B_set", "I_set1", ...
  StDataset train;
  StDataset val;
  StDataset test;
  int64_t series_offset = 0;  // start row in the full series
};

struct StreamConfig {
  float base_fraction = 0.30f;
  int64_t num_incremental = 4;
  float train_fraction = 0.70f;
  float val_fraction = 0.10f;  // remainder is test
};

// Splits a windowed dataset into the continual-learning stages.
class StreamSplitter {
 public:
  StreamSplitter(const StDataset& full, const StreamConfig& config);

  int64_t NumStages() const { return static_cast<int64_t>(stages_.size()); }
  const StreamStage& Stage(int64_t index) const;
  const std::vector<StreamStage>& stages() const { return stages_; }

 private:
  std::vector<StreamStage> stages_;
};

}  // namespace data
}  // namespace urcl

#endif  // URCL_DATA_STREAM_H_
