#include "data/normalizer.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace urcl {
namespace data {
namespace {

// Applies fn(value, channel) over a [..., C] tensor.
template <typename Fn>
Tensor PerChannel(const Tensor& data, int64_t channels, Fn fn) {
  URCL_CHECK_GE(data.rank(), 1);
  URCL_CHECK_EQ(data.dim(-1), channels)
      << "data channel count does not match fitted normalizer";
  Tensor out = data.Clone();
  float* p = out.mutable_data();
  const int64_t n = out.NumElements();
  for (int64_t i = 0; i < n; ++i) p[i] = fn(p[i], i % channels);
  return out;
}

}  // namespace

MinMaxNormalizer MinMaxNormalizer::Fit(const Tensor& series) {
  URCL_CHECK_GE(series.rank(), 1);
  const int64_t channels = series.dim(-1);
  MinMaxNormalizer norm;
  norm.mins_.assign(static_cast<size_t>(channels), std::numeric_limits<float>::infinity());
  norm.maxs_.assign(static_cast<size_t>(channels), -std::numeric_limits<float>::infinity());
  const float* p = series.data();
  // Non-finite cells (sensor dropouts, injected faults) are excluded from the
  // statistics so one bad reading cannot poison the whole scaling.
  for (int64_t i = 0; i < series.NumElements(); ++i) {
    if (!std::isfinite(p[i])) continue;
    const size_t c = static_cast<size_t>(i % channels);
    norm.mins_[c] = std::min(norm.mins_[c], p[i]);
    norm.maxs_[c] = std::max(norm.maxs_[c], p[i]);
  }
  for (size_t c = 0; c < norm.mins_.size(); ++c) {
    if (!std::isfinite(norm.mins_[c]) || !std::isfinite(norm.maxs_[c])) {
      // Every cell in this channel was non-finite; fall back to identity-ish.
      norm.mins_[c] = 0.0f;
      norm.maxs_[c] = 1.0f;
    }
    if (norm.maxs_[c] - norm.mins_[c] < 1e-6f) norm.maxs_[c] = norm.mins_[c] + 1.0f;
  }
  return norm;
}

Tensor MinMaxNormalizer::Transform(const Tensor& data) const {
  return PerChannel(data, num_channels(), [this](float v, int64_t c) {
    const size_t i = static_cast<size_t>(c);
    return (v - mins_[i]) / (maxs_[i] - mins_[i]);
  });
}

Tensor MinMaxNormalizer::InverseTransform(const Tensor& data) const {
  return PerChannel(data, num_channels(), [this](float v, int64_t c) {
    const size_t i = static_cast<size_t>(c);
    return v * (maxs_[i] - mins_[i]) + mins_[i];
  });
}

Tensor MinMaxNormalizer::InverseTransformChannel(const Tensor& data, int64_t channel) const {
  URCL_CHECK(channel >= 0 && channel < num_channels());
  const float lo = mins_[static_cast<size_t>(channel)];
  const float hi = maxs_[static_cast<size_t>(channel)];
  Tensor out = data.Clone();
  float* p = out.mutable_data();
  for (int64_t i = 0; i < out.NumElements(); ++i) p[i] = p[i] * (hi - lo) + lo;
  return out;
}

ZScoreNormalizer ZScoreNormalizer::Fit(const Tensor& series) {
  URCL_CHECK_GE(series.rank(), 1);
  const int64_t channels = series.dim(-1);
  ZScoreNormalizer norm;
  std::vector<double> sums(static_cast<size_t>(channels), 0.0);
  std::vector<double> sq_sums(static_cast<size_t>(channels), 0.0);
  std::vector<int64_t> counts(static_cast<size_t>(channels), 0);
  const float* p = series.data();
  URCL_CHECK_GT(series.NumElements() / channels, 0);
  // Like MinMaxNormalizer::Fit, non-finite cells are skipped.
  for (int64_t i = 0; i < series.NumElements(); ++i) {
    if (!std::isfinite(p[i])) continue;
    const size_t c = static_cast<size_t>(i % channels);
    sums[c] += p[i];
    sq_sums[c] += double(p[i]) * double(p[i]);
    ++counts[c];
  }
  norm.means_.resize(static_cast<size_t>(channels));
  norm.stds_.resize(static_cast<size_t>(channels));
  for (size_t c = 0; c < norm.means_.size(); ++c) {
    if (counts[c] == 0) {
      norm.means_[c] = 0.0f;
      norm.stds_[c] = 1.0f;
      continue;
    }
    norm.means_[c] = static_cast<float>(sums[c] / counts[c]);
    const double var = sq_sums[c] / counts[c] - double(norm.means_[c]) * norm.means_[c];
    norm.stds_[c] = static_cast<float>(std::sqrt(std::max(var, 1e-12)));
    if (norm.stds_[c] < 1e-6f) norm.stds_[c] = 1.0f;
  }
  return norm;
}

Tensor ZScoreNormalizer::Transform(const Tensor& data) const {
  return PerChannel(data, static_cast<int64_t>(means_.size()), [this](float v, int64_t c) {
    const size_t i = static_cast<size_t>(c);
    return (v - means_[i]) / stds_[i];
  });
}

Tensor ZScoreNormalizer::InverseTransformChannel(const Tensor& data, int64_t channel) const {
  URCL_CHECK(channel >= 0 && channel < static_cast<int64_t>(means_.size()));
  const float mean = means_[static_cast<size_t>(channel)];
  const float stddev = stds_[static_cast<size_t>(channel)];
  Tensor out = data.Clone();
  float* p = out.mutable_data();
  for (int64_t i = 0; i < out.NumElements(); ++i) p[i] = p[i] * stddev + mean;
  return out;
}

}  // namespace data
}  // namespace urcl
