#include "data/normalizer.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace urcl {
namespace data {
namespace {

// Applies fn(value, channel) over a [..., C] tensor.
template <typename Fn>
Tensor PerChannel(const Tensor& data, int64_t channels, Fn fn) {
  URCL_CHECK_GE(data.rank(), 1);
  URCL_CHECK_EQ(data.dim(-1), channels)
      << "data channel count does not match fitted normalizer";
  Tensor out = data.Clone();
  float* p = out.mutable_data();
  const int64_t n = out.NumElements();
  for (int64_t i = 0; i < n; ++i) p[i] = fn(p[i], i % channels);
  return out;
}

}  // namespace

MinMaxNormalizer MinMaxNormalizer::Fit(const Tensor& series) {
  URCL_CHECK_GE(series.rank(), 1);
  const int64_t channels = series.dim(-1);
  MinMaxNormalizer norm;
  norm.mins_.assign(static_cast<size_t>(channels), std::numeric_limits<float>::infinity());
  norm.maxs_.assign(static_cast<size_t>(channels), -std::numeric_limits<float>::infinity());
  const float* p = series.data();
  for (int64_t i = 0; i < series.NumElements(); ++i) {
    const size_t c = static_cast<size_t>(i % channels);
    norm.mins_[c] = std::min(norm.mins_[c], p[i]);
    norm.maxs_[c] = std::max(norm.maxs_[c], p[i]);
  }
  for (size_t c = 0; c < norm.mins_.size(); ++c) {
    if (norm.maxs_[c] - norm.mins_[c] < 1e-6f) norm.maxs_[c] = norm.mins_[c] + 1.0f;
  }
  return norm;
}

Tensor MinMaxNormalizer::Transform(const Tensor& data) const {
  return PerChannel(data, num_channels(), [this](float v, int64_t c) {
    const size_t i = static_cast<size_t>(c);
    return (v - mins_[i]) / (maxs_[i] - mins_[i]);
  });
}

Tensor MinMaxNormalizer::InverseTransform(const Tensor& data) const {
  return PerChannel(data, num_channels(), [this](float v, int64_t c) {
    const size_t i = static_cast<size_t>(c);
    return v * (maxs_[i] - mins_[i]) + mins_[i];
  });
}

Tensor MinMaxNormalizer::InverseTransformChannel(const Tensor& data, int64_t channel) const {
  URCL_CHECK(channel >= 0 && channel < num_channels());
  const float lo = mins_[static_cast<size_t>(channel)];
  const float hi = maxs_[static_cast<size_t>(channel)];
  Tensor out = data.Clone();
  float* p = out.mutable_data();
  for (int64_t i = 0; i < out.NumElements(); ++i) p[i] = p[i] * (hi - lo) + lo;
  return out;
}

ZScoreNormalizer ZScoreNormalizer::Fit(const Tensor& series) {
  URCL_CHECK_GE(series.rank(), 1);
  const int64_t channels = series.dim(-1);
  ZScoreNormalizer norm;
  std::vector<double> sums(static_cast<size_t>(channels), 0.0);
  std::vector<double> sq_sums(static_cast<size_t>(channels), 0.0);
  const float* p = series.data();
  const int64_t per_channel = series.NumElements() / channels;
  URCL_CHECK_GT(per_channel, 0);
  for (int64_t i = 0; i < series.NumElements(); ++i) {
    const size_t c = static_cast<size_t>(i % channels);
    sums[c] += p[i];
    sq_sums[c] += double(p[i]) * double(p[i]);
  }
  norm.means_.resize(static_cast<size_t>(channels));
  norm.stds_.resize(static_cast<size_t>(channels));
  for (size_t c = 0; c < norm.means_.size(); ++c) {
    norm.means_[c] = static_cast<float>(sums[c] / per_channel);
    const double var = sq_sums[c] / per_channel - double(norm.means_[c]) * norm.means_[c];
    norm.stds_[c] = static_cast<float>(std::sqrt(std::max(var, 1e-12)));
    if (norm.stds_[c] < 1e-6f) norm.stds_[c] = 1.0f;
  }
  return norm;
}

Tensor ZScoreNormalizer::Transform(const Tensor& data) const {
  return PerChannel(data, static_cast<int64_t>(means_.size()), [this](float v, int64_t c) {
    const size_t i = static_cast<size_t>(c);
    return (v - means_[i]) / stds_[i];
  });
}

Tensor ZScoreNormalizer::InverseTransformChannel(const Tensor& data, int64_t channel) const {
  URCL_CHECK(channel >= 0 && channel < static_cast<int64_t>(means_.size()));
  const float mean = means_[static_cast<size_t>(channel)];
  const float stddev = stds_[static_cast<size_t>(channel)];
  Tensor out = data.Clone();
  float* p = out.mutable_data();
  for (int64_t i = 0; i < out.NumElements(); ++i) p[i] = p[i] * stddev + mean;
  return out;
}

}  // namespace data
}  // namespace urcl
