#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/fault_injector.h"
#include "graph/generator.h"

namespace urcl {
namespace data {
namespace {

// Gaussian bump helper for the two daily rush hours.
float Bump(float t, float center, float width) {
  const float d = t - center;
  return std::exp(-0.5f * d * d / (width * width));
}

}  // namespace

SyntheticTraffic::SyntheticTraffic(const TrafficConfig& config)
    : config_(config),
      network_([&] {
        Rng graph_rng(config.seed);
        return graph::RandomGeometricGraph(config.num_nodes, config.graph_radius, graph_rng);
      }()) {
  URCL_CHECK_GT(config_.num_days, 0);
  URCL_CHECK_GT(config_.steps_per_day, 0);
  URCL_CHECK(config_.channels >= 1 && config_.channels <= 3)
      << "channels must be 1 (speed), 2 (+flow) or 3 (+occupancy)";

  Rng rng(config_.seed + 1);
  node_factor_.resize(static_cast<size_t>(config_.num_nodes));
  for (auto& f : node_factor_) f = rng.Uniform(0.7f, 1.3f);

  // One smoothing pass over the graph so neighboring sensors have correlated
  // demand (spatial correlation the GCN can exploit).
  std::vector<float> smoothed = node_factor_;
  for (int64_t i = 0; i < config_.num_nodes; ++i) {
    const auto& neighbors = network_.Neighbors(i);
    if (neighbors.empty()) continue;
    float acc = 0.0f;
    for (const auto& [j, w] : neighbors) acc += node_factor_[static_cast<size_t>(j)];
    smoothed[static_cast<size_t>(i)] =
        0.6f * node_factor_[static_cast<size_t>(i)] + 0.4f * acc / neighbors.size();
  }
  node_factor_ = smoothed;

  // Per-day drift trajectories: demand pattern AND the dynamics regime.
  const size_t days = static_cast<size_t>(config_.num_days);
  factor_by_day_.resize(days);
  phase_by_day_.resize(days);
  amplitude_by_day_.resize(days);
  inertia_by_day_.resize(days);
  coupling_by_day_.resize(days);
  speed_coef_by_day_.resize(days);
  flow_scale_by_day_.resize(days);
  std::vector<float> factors = node_factor_;
  float phase = 0.0f;
  float amplitude = 1.0f;
  float inertia = 0.45f;
  float coupling = 0.3f;
  float speed_coef = 0.8f;
  float flow_scale = 1.0f;
  for (int64_t day = 0; day < config_.num_days; ++day) {
    if (std::find(config_.abrupt_drift_days.begin(), config_.abrupt_drift_days.end(), day) !=
        config_.abrupt_drift_days.end()) {
      // Abrupt concept drift: re-draw a fraction of node factors, jump phase.
      for (auto& f : factors) {
        if (rng.Bernoulli(config_.abrupt_refresh_fraction)) f = rng.Uniform(0.7f, 1.3f);
      }
      phase += config_.abrupt_phase_jump_steps;
      if (config_.drift_dynamics) {
        // Advance the regime: the AR dynamics of congestion and how it maps
        // to the observed channels take a *random walk* away from their
        // current values (real drift is cumulative — seasons progress, road
        // works accumulate — so later periods keep diverging from the base
        // period instead of reverting to it). regime_drift_scale scales the
        // step size; walks reflect off the parameter bounds.
        const float s = config_.regime_drift_scale;
        auto walk = [&](float value, float step, float lo, float hi) {
          value += (rng.Bernoulli(0.5) ? 1.0f : -1.0f) * rng.Uniform(0.5f, 1.0f) * step * s;
          if (value > hi) value = hi - (value - hi);
          if (value < lo) value = lo + (lo - value);
          return std::clamp(value, lo, hi);
        };
        inertia = walk(inertia, 0.12f, 0.1f, 0.8f);
        coupling = std::min(walk(coupling, 0.1f, 0.05f, 0.45f), 0.85f - inertia);
        speed_coef = walk(speed_coef, 0.14f, 0.3f, 0.98f);
        flow_scale = walk(flow_scale, 0.1f, 0.5f, 1.5f);
      }
    }
    factor_by_day_[static_cast<size_t>(day)] = factors;
    phase_by_day_[static_cast<size_t>(day)] = phase;
    amplitude_by_day_[static_cast<size_t>(day)] = amplitude;
    inertia_by_day_[static_cast<size_t>(day)] = inertia;
    coupling_by_day_[static_cast<size_t>(day)] = coupling;
    speed_coef_by_day_[static_cast<size_t>(day)] = speed_coef;
    flow_scale_by_day_[static_cast<size_t>(day)] = flow_scale;
    phase += config_.phase_drift_per_day;
    amplitude *= 1.0f + config_.demand_growth_per_day;
  }

  // Incidents: Poisson-ish sampling, localized congestion spikes.
  incidents_by_day_.resize(days);
  for (int64_t day = 0; day < config_.num_days; ++day) {
    for (int64_t node = 0; node < config_.num_nodes; ++node) {
      if (rng.Bernoulli(std::min(0.95, static_cast<double>(config_.incident_rate)))) {
        Incident incident;
        incident.node = node;
        incident.start_step = rng.UniformInt(0, config_.steps_per_day - 1);
        incident.duration = rng.UniformInt(2, std::max<int64_t>(3, config_.steps_per_day / 12));
        incident.severity = rng.Uniform(0.2f, 0.6f);
        incidents_by_day_[static_cast<size_t>(day)].push_back(incident);
      }
    }
  }

  SimulateCongestion();
}

float SyntheticTraffic::DemandAt(int64_t day, int64_t step, int64_t node) const {
  const float steps = static_cast<float>(config_.steps_per_day);
  const float phase = phase_by_day_[static_cast<size_t>(day)];
  const float t = static_cast<float>(step) - phase;
  // Rush hours at 8:30 and 17:30 (as fractions of the day), widths ~1.25 h.
  const float morning = Bump(t, 8.5f / 24.0f * steps, 1.25f / 24.0f * steps);
  const float evening = Bump(t, 17.5f / 24.0f * steps, 1.5f / 24.0f * steps);
  const bool weekend = (day % 7) >= 5;
  const float weekday_scale = weekend ? 0.55f : 1.0f;
  const float base = 0.22f + weekday_scale * (0.55f * morning + 0.5f * evening);
  return amplitude_by_day_[static_cast<size_t>(day)] * weekday_scale *
         factor_by_day_[static_cast<size_t>(day)][static_cast<size_t>(node)] * base;
}

void SyntheticTraffic::SimulateCongestion() {
  const int64_t total_steps = config_.num_days * config_.steps_per_day;
  const int64_t n = config_.num_nodes;
  congestion_.assign(static_cast<size_t>(total_steps * n), 0.0f);
  // Process noise makes the congestion state genuinely stochastic so that
  // knowing the regime coefficients matters for one-step prediction.
  Rng process_rng(config_.seed + 3);
  const float process_noise = config_.noise_std > 0.0f ? 0.02f : 0.0f;

  std::vector<float> previous(static_cast<size_t>(n));
  for (int64_t node = 0; node < n; ++node) {
    previous[static_cast<size_t>(node)] = std::clamp(DemandAt(0, 0, node), 0.0f, 1.0f);
  }
  std::vector<float> current(static_cast<size_t>(n));
  for (int64_t t = 0; t < total_steps; ++t) {
    const int64_t day = t / config_.steps_per_day;
    const int64_t step = t % config_.steps_per_day;
    const float a = inertia_by_day_[static_cast<size_t>(day)];
    const float b = coupling_by_day_[static_cast<size_t>(day)];
    const float g = 1.0f - a - b;  // demand-response weight; mean level is
                                   // regime-independent, dynamics are not.
    for (int64_t node = 0; node < n; ++node) {
      float drive = DemandAt(day, step, node);
      for (const Incident& incident : incidents_by_day_[static_cast<size_t>(day)]) {
        if (incident.node == node && step >= incident.start_step &&
            step < incident.start_step + incident.duration) {
          drive += incident.severity;
        }
      }
      const auto& neighbors = network_.Neighbors(node);
      float neighbor_mean = previous[static_cast<size_t>(node)];
      if (!neighbors.empty()) {
        float acc = 0.0f;
        float weight_total = 0.0f;
        for (const auto& [j, w] : neighbors) {
          acc += w * previous[static_cast<size_t>(j)];
          weight_total += w;
        }
        neighbor_mean = acc / std::max(weight_total, 1e-6f);
      }
      float state = a * previous[static_cast<size_t>(node)] + b * neighbor_mean + g * drive;
      if (process_noise > 0.0f) state += process_rng.Normal(0.0f, process_noise);
      current[static_cast<size_t>(node)] = std::clamp(state, 0.0f, 1.0f);
      congestion_[static_cast<size_t>(t * n + node)] = current[static_cast<size_t>(node)];
    }
    previous = current;
  }
}

float SyntheticTraffic::CongestionAt(int64_t day, int64_t step, int64_t node) const {
  URCL_CHECK(day >= 0 && day < config_.num_days);
  URCL_CHECK(step >= 0 && step < config_.steps_per_day);
  URCL_CHECK(node >= 0 && node < config_.num_nodes);
  const int64_t t = day * config_.steps_per_day + step;
  return congestion_[static_cast<size_t>(t * config_.num_nodes + node)];
}

Tensor SyntheticTraffic::GenerateSeries() {
  const int64_t total_steps = config_.num_days * config_.steps_per_day;
  Tensor series(Shape{total_steps, config_.num_nodes, config_.channels});
  float* out = series.mutable_data();
  Rng noise_rng(config_.seed + 2);
  for (int64_t day = 0; day < config_.num_days; ++day) {
    for (int64_t step = 0; step < config_.steps_per_day; ++step) {
      const int64_t t = day * config_.steps_per_day + step;
      for (int64_t node = 0; node < config_.num_nodes; ++node) {
        const float c = CongestionAt(day, step, node);
        float* cell = out + (t * config_.num_nodes + node) * config_.channels;
        // Speed falls with congestion at the current regime's response rate.
        const float speed_coef = speed_coef_by_day_[static_cast<size_t>(day)];
        const float speed = config_.free_flow_speed * (1.0f - speed_coef * c) +
                            noise_rng.Normal(0.0f, config_.noise_std);
        cell[0] = std::max(speed, 0.05f * config_.free_flow_speed);
        if (config_.channels >= 2) {
          // Fundamental diagram: flow peaks at intermediate congestion; the
          // regime scales the magnitude (sensor gain / capacity changes).
          const float flow = flow_scale_by_day_[static_cast<size_t>(day)] * config_.max_flow *
                             4.0f * c * std::max(1.0f - c, 0.0f);
          cell[1] = std::max(flow + noise_rng.Normal(0.0f, config_.noise_std * 4.0f), 0.0f);
        }
        if (config_.channels >= 3) {
          const float occupancy = 100.0f * c + noise_rng.Normal(0.0f, config_.noise_std);
          cell[2] = std::clamp(occupancy, 0.0f, 100.0f);
        }
      }
    }
  }
  ApplyInputFaults(&series);
  return series;
}

void ApplyInputFaults(Tensor* series) {
  URCL_CHECK(series != nullptr);
  URCL_CHECK_EQ(series->rank(), 3) << "fault injection expects a [T, N, C] series";
  fault::FaultInjector& injector = fault::FaultInjector::Instance();
  const double nan_rate = injector.nan_rate();
  const double inf_rate = injector.inf_rate();
  const double drop_rate = injector.drop_rate();
  if (nan_rate <= 0.0 && inf_rate <= 0.0 && drop_rate <= 0.0) return;

  const int64_t steps = series->dim(0);
  const int64_t nodes = series->dim(1);
  const int64_t channels = series->dim(2);
  float* data = series->mutable_data();
  Rng& rng = injector.rng();
  // Dropped sensors: a (t, node) pair whose every channel reads NaN, the way
  // a dead loop detector shows up in the METR-LA/PEMS exports.
  for (int64_t t = 0; t < steps; ++t) {
    for (int64_t node = 0; node < nodes; ++node) {
      float* cell = data + (t * nodes + node) * channels;
      if (drop_rate > 0.0 && rng.Bernoulli(drop_rate)) {
        for (int64_t c = 0; c < channels; ++c) {
          cell[c] = std::numeric_limits<float>::quiet_NaN();
        }
        injector.RecordDroppedSensor();
        continue;
      }
      for (int64_t c = 0; c < channels; ++c) {
        if (nan_rate > 0.0 && rng.Bernoulli(nan_rate)) {
          cell[c] = std::numeric_limits<float>::quiet_NaN();
          injector.RecordNanCell();
        } else if (inf_rate > 0.0 && rng.Bernoulli(inf_rate)) {
          cell[c] = std::numeric_limits<float>::infinity();
          injector.RecordInfCell();
        }
      }
    }
  }
}

}  // namespace data
}  // namespace urcl
