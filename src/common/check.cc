#include "common/check.h"

#include <atomic>

namespace urcl {
namespace internal {

void CheckFailed(const char* file, int line, const std::string& message) {
  std::cerr << "[URCL FATAL] " << file << ":" << line << ": " << message << std::endl;
  // Re-entrancy guard: a hook that itself trips a check must not recurse.
  static std::atomic<bool> in_hook{false};
  if (CheckFailureHook hook = CheckFailureHookSlot().load(std::memory_order_acquire)) {
    if (!in_hook.exchange(true, std::memory_order_acq_rel)) {
      hook(file, line, message.c_str());
    }
  }
  std::abort();
}

}  // namespace internal

namespace check {
namespace {

std::atomic<bool>& GraphChecksFlag() {
  static std::atomic<bool> enabled = [] {
    if (const char* env = std::getenv("URCL_CHECK")) return ParseEnabledValue(env);
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
  }();
  return enabled;
}

}  // namespace

bool ParseEnabledValue(const char* value) {
  if (value == nullptr) return true;
  const std::string v(value);
  return !(v == "0" || v == "off" || v == "false" || v == "OFF");
}

bool GraphChecksEnabled() { return GraphChecksFlag().load(std::memory_order_relaxed); }

void SetGraphChecksEnabled(bool enabled) {
  GraphChecksFlag().store(enabled, std::memory_order_relaxed);
}

}  // namespace check
}  // namespace urcl
