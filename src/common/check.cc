#include "common/check.h"

namespace urcl {
namespace internal {

void CheckFailed(const char* file, int line, const std::string& message) {
  std::cerr << "[URCL FATAL] " << file << ":" << line << ": " << message << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace urcl
