// Wall-clock stopwatch used by the efficiency experiments (Fig. 7) and the
// observability layer. MonotonicNowNs() is the process's single clock source:
// tracing spans, metrics timestamps, the autograd profiler and the Fig. 7
// timings all read the same monotonic nanosecond counter, so a span in a
// Chrome trace and a seconds column in an experiment table agree.
#ifndef URCL_COMMON_STOPWATCH_H_
#define URCL_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace urcl {

// Monotonic (steady-clock) nanoseconds since an arbitrary epoch.
inline int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Measures elapsed wall-clock time; Restart() returns the lap in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(MonotonicNowNs()) {}

  // Monotonic nanoseconds since construction or the last Restart().
  int64_t ElapsedNs() const { return MonotonicNowNs() - start_ns_; }

  // Seconds since construction or the last Restart().
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNs()) * 1e-9; }

  double Restart() {
    const int64_t now = MonotonicNowNs();
    const double elapsed = static_cast<double>(now - start_ns_) * 1e-9;
    start_ns_ = now;
    return elapsed;
  }

 private:
  int64_t start_ns_;
};

}  // namespace urcl

#endif  // URCL_COMMON_STOPWATCH_H_
