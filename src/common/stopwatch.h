// Wall-clock stopwatch used by the efficiency experiments (Fig. 7).
#ifndef URCL_COMMON_STOPWATCH_H_
#define URCL_COMMON_STOPWATCH_H_

#include <chrono>

namespace urcl {

// Measures elapsed wall-clock time; Restart() returns the lap in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Restart() {
    const double elapsed = ElapsedSeconds();
    start_ = Clock::now();
    return elapsed;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace urcl

#endif  // URCL_COMMON_STOPWATCH_H_
