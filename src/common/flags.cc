#include "common/flags.h"

#include <cstdlib>

namespace urcl {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::GetString(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace urcl
