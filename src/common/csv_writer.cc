#include "common/csv_writer.h"

#include "common/check.h"

namespace urcl {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  URCL_CHECK(out_.is_open()) << "cannot open " << path << " for writing";
  URCL_CHECK_GT(columns_, 0u);
  WriteRow(header);
}

std::string CsvWriter::Escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (const char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  URCL_CHECK_EQ(cells.size(), columns_) << "row width does not match header";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(cells[i]);
  }
  out_ << '\n';
  URCL_CHECK(out_.good()) << "CSV write failed for " << path_;
}

}  // namespace urcl
