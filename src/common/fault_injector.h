// Process-wide fault-injection harness for crash-safety and robustness
// testing. Three fault families:
//
//  1. Kill points: named locations in the training loop (see core/urcl.cc)
//     where the process can be made to "crash" after a given number of hits —
//     either for real (std::_Exit(137), like SIGKILL but without signal
//     delivery nondeterminism) or cooperatively (the loop stops, the caller
//     discards the trainer and must resume from on-disk state only).
//  2. Input faults: NaN/Inf sensor readings and dropped (blacked-out) sensors
//     applied to generated series (data/synthetic.cc), plus duplicated
//     batches in the training schedule. The pipeline must quarantine the
//     resulting bad batches and keep training on the rest.
//  3. Serving faults: failures of the live serving path (serve/service.cc,
//     core/urcl.cc publish). The service must quarantine, degrade or roll
//     back — never crash and never emit a non-finite forecast.
//
// Configured programmatically (tests) or via the URCL_FAULT environment
// variable (CLI binaries call LoadFromEnv via ApplyRuntimeFlags). Spec is a
// semicolon-separated list:
//
//   URCL_FAULT="nan=0.01;inf=0.001;drop=0.05;dup=0.02;seed=9;kill=batch_done:40"
//   URCL_FAULT="serve_bitflip=0.2;tick_drop=0.1;slow=0.05;slow_ms=2;drop_publish=0.2"
//
//   kill=<point>:<hit>[:stop]  crash on the <hit>-th pass of the kill point
//                              (":stop" = cooperative stop instead of _Exit)
//   nan=<rate>   probability a series cell becomes NaN
//   inf=<rate>   probability a series cell becomes +/-Inf
//   drop=<rate>  probability a sensor loses a contiguous span of readings
//   dup=<rate>   probability a training batch is fed twice
//   seed=<n>     seed of the injector's private RNG (default 0xFA117)
//
//   serving fault points (names are the contract; tests and scripts/check.sh
//   reference them verbatim):
//   serve_bitflip=<rate>   probability a published snapshot has one byte
//                          bit-flipped before serving-side admission (the
//                          checkpoint CRC gate must quarantine it)
//   drop_publish=<rate>    probability the trainer's snapshot publish is
//                          silently swallowed (a stalled publisher: snapshot
//                          age grows until the staleness/age watchdogs fire)
//   tick_drop=<rate>       probability an ingested tick is dropped before it
//                          reaches the rolling window (ingestion gap)
//   tick_dup=<rate>        probability an ingested tick is applied twice
//   slow=<rate>            probability a Predict call sleeps slow_ms before
//                          answering (slow-inference tail)
//   slow_ms=<n>            sleep duration of a slowed query (default 2 ms)
//
// Kill points currently wired in (core/urcl.cc): stage_begin, batch_done,
// checkpoint_written, stage_end.
//
// All draws use the injector's own Rng so enabling faults never perturbs the
// deterministic streams of the components under test. Serving-fault draws are
// mutex-guarded: they fire from the ingestion, publisher and query threads
// concurrently.
#ifndef URCL_COMMON_FAULT_INJECTOR_H_
#define URCL_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"

namespace urcl {
namespace fault {

enum class KillMode {
  kExit,  // std::_Exit(137) — a real (if tidy) crash
  kStop,  // AtKillPoint returns true; the training loop must stop
};

struct FaultCounters {
  int64_t kills = 0;
  int64_t nan_cells = 0;
  int64_t inf_cells = 0;
  int64_t dropped_sensors = 0;
  int64_t duplicated_batches = 0;
  // Serving faults.
  int64_t bitflipped_snapshots = 0;
  int64_t dropped_publishes = 0;
  int64_t dropped_ticks = 0;
  int64_t duplicated_ticks = 0;
  int64_t slowed_queries = 0;
};

class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Parses `spec` (grammar above). Returns one message per malformed clause;
  // valid clauses are applied regardless.
  std::vector<std::string> Configure(const std::string& spec);

  // Reads URCL_FAULT once per call; malformed clauses are reported on stderr.
  void LoadFromEnv();

  // Back to a fully disarmed injector (tests call this between cases).
  void Reset();

  bool enabled() const { return enabled_; }
  bool HasInputFaults() const {
    return nan_rate_ > 0.0 || inf_rate_ > 0.0 || drop_rate_ > 0.0;
  }

  // --- Kill points --------------------------------------------------------
  // Arms a crash at the `after_hits`-th pass of `point` (1-based).
  void ArmKill(const std::string& point, int64_t after_hits, KillMode mode);

  // Called at every named kill point. Returns true when the caller must stop
  // (kStop mode); in kExit mode the process exits with code 137 instead. A
  // triggered kill disarms itself so a resumed run in the same process (the
  // cooperative testing pattern) does not re-fire.
  bool AtKillPoint(const char* point);

  // --- Input faults -------------------------------------------------------
  double nan_rate() const { return nan_rate_; }
  double inf_rate() const { return inf_rate_; }
  double drop_rate() const { return drop_rate_; }
  double dup_rate() const { return dup_rate_; }

  // Bernoulli(dup_rate) draw; counts and returns true when the caller should
  // feed the current batch twice.
  bool NextBatchDuplicated();

  // Private RNG for fault placement (used by data/synthetic.cc).
  Rng& rng() { return rng_; }

  // Counter hooks for fault appliers living in other layers.
  void RecordNanCell() { ++counters_.nan_cells; }
  void RecordInfCell() { ++counters_.inf_cells; }
  void RecordDroppedSensor() { ++counters_.dropped_sensors; }

  // --- Serving faults -----------------------------------------------------
  // Thread-safe Bernoulli draws (called from the serving threads). Each
  // counts its own trigger.
  bool NextSnapshotBitflipped();
  bool NextPublishDropped();
  bool NextTickDropped();
  bool NextTickDuplicated();
  bool NextQuerySlowed();
  int64_t slow_ms() const { return slow_ms_; }

  // Uniform byte index in [0, size) from the injector's RNG (thread-safe);
  // used to place the serve_bitflip corruption.
  size_t PickByte(size_t size);

  const FaultCounters& counters() const { return counters_; }

 private:
  FaultInjector() = default;

  struct KillSpec {
    int64_t after_hits = 0;  // 1-based trigger count; 0 = disarmed
    int64_t hits = 0;
    KillMode mode = KillMode::kExit;
  };

  // Mutex-guarded Bernoulli draw incrementing `counter` on success (the
  // serving threads share the injector's RNG).
  bool ServeDraw(double rate, int64_t* counter);

  bool enabled_ = false;
  double nan_rate_ = 0.0;
  double inf_rate_ = 0.0;
  double drop_rate_ = 0.0;
  double dup_rate_ = 0.0;
  double bitflip_rate_ = 0.0;
  double drop_publish_rate_ = 0.0;
  double tick_drop_rate_ = 0.0;
  double tick_dup_rate_ = 0.0;
  double slow_rate_ = 0.0;
  int64_t slow_ms_ = 2;
  // rng_, kills_ and counters_ cannot be URCL_GUARDED_BY(serve_mu_): the
  // training-path draws (NextLossNaN etc.), kill points and Configure run on
  // the single driver thread without the lock by design, while the
  // serving-path draws (ServeDraw, PickByte, Reset) fire from ingestion,
  // publisher and query threads concurrently and do lock. serve_mu_ makes
  // only the serving draws atomic; mixing the two modes on one member is a
  // documented pre-TSA contract, not an analysis escape.
  Rng rng_{0xFA117};
  Mutex serve_mu_;
  std::map<std::string, KillSpec> kills_;
  FaultCounters counters_;
};

}  // namespace fault
}  // namespace urcl

#endif  // URCL_COMMON_FAULT_INJECTOR_H_
