// Process-wide fault-injection harness for crash-safety and robustness
// testing. Two fault families:
//
//  1. Kill points: named locations in the training loop (see core/urcl.cc)
//     where the process can be made to "crash" after a given number of hits —
//     either for real (std::_Exit(137), like SIGKILL but without signal
//     delivery nondeterminism) or cooperatively (the loop stops, the caller
//     discards the trainer and must resume from on-disk state only).
//  2. Input faults: NaN/Inf sensor readings and dropped (blacked-out) sensors
//     applied to generated series (data/synthetic.cc), plus duplicated
//     batches in the training schedule. The pipeline must quarantine the
//     resulting bad batches and keep training on the rest.
//
// Configured programmatically (tests) or via the URCL_FAULT environment
// variable (CLI binaries call LoadFromEnv via ApplyRuntimeFlags). Spec is a
// semicolon-separated list:
//
//   URCL_FAULT="nan=0.01;inf=0.001;drop=0.05;dup=0.02;seed=9;kill=batch_done:40"
//
//   kill=<point>:<hit>[:stop]  crash on the <hit>-th pass of the kill point
//                              (":stop" = cooperative stop instead of _Exit)
//   nan=<rate>   probability a series cell becomes NaN
//   inf=<rate>   probability a series cell becomes +/-Inf
//   drop=<rate>  probability a sensor loses a contiguous span of readings
//   dup=<rate>   probability a training batch is fed twice
//   seed=<n>     seed of the injector's private RNG (default 0xFA117)
//
// All draws use the injector's own Rng so enabling faults never perturbs the
// deterministic streams of the components under test.
#ifndef URCL_COMMON_FAULT_INJECTOR_H_
#define URCL_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"

namespace urcl {
namespace fault {

enum class KillMode {
  kExit,  // std::_Exit(137) — a real (if tidy) crash
  kStop,  // AtKillPoint returns true; the training loop must stop
};

struct FaultCounters {
  int64_t kills = 0;
  int64_t nan_cells = 0;
  int64_t inf_cells = 0;
  int64_t dropped_sensors = 0;
  int64_t duplicated_batches = 0;
};

class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Parses `spec` (grammar above). Returns one message per malformed clause;
  // valid clauses are applied regardless.
  std::vector<std::string> Configure(const std::string& spec);

  // Reads URCL_FAULT once per call; malformed clauses are reported on stderr.
  void LoadFromEnv();

  // Back to a fully disarmed injector (tests call this between cases).
  void Reset();

  bool enabled() const { return enabled_; }
  bool HasInputFaults() const {
    return nan_rate_ > 0.0 || inf_rate_ > 0.0 || drop_rate_ > 0.0;
  }

  // --- Kill points --------------------------------------------------------
  // Arms a crash at the `after_hits`-th pass of `point` (1-based).
  void ArmKill(const std::string& point, int64_t after_hits, KillMode mode);

  // Called at every named kill point. Returns true when the caller must stop
  // (kStop mode); in kExit mode the process exits with code 137 instead. A
  // triggered kill disarms itself so a resumed run in the same process (the
  // cooperative testing pattern) does not re-fire.
  bool AtKillPoint(const char* point);

  // --- Input faults -------------------------------------------------------
  double nan_rate() const { return nan_rate_; }
  double inf_rate() const { return inf_rate_; }
  double drop_rate() const { return drop_rate_; }
  double dup_rate() const { return dup_rate_; }

  // Bernoulli(dup_rate) draw; counts and returns true when the caller should
  // feed the current batch twice.
  bool NextBatchDuplicated();

  // Private RNG for fault placement (used by data/synthetic.cc).
  Rng& rng() { return rng_; }

  // Counter hooks for fault appliers living in other layers.
  void RecordNanCell() { ++counters_.nan_cells; }
  void RecordInfCell() { ++counters_.inf_cells; }
  void RecordDroppedSensor() { ++counters_.dropped_sensors; }

  const FaultCounters& counters() const { return counters_; }

 private:
  FaultInjector() = default;

  struct KillSpec {
    int64_t after_hits = 0;  // 1-based trigger count; 0 = disarmed
    int64_t hits = 0;
    KillMode mode = KillMode::kExit;
  };

  bool enabled_ = false;
  double nan_rate_ = 0.0;
  double inf_rate_ = 0.0;
  double drop_rate_ = 0.0;
  double dup_rate_ = 0.0;
  Rng rng_{0xFA117};
  std::map<std::string, KillSpec> kills_;
  FaultCounters counters_;
};

}  // namespace fault
}  // namespace urcl

#endif  // URCL_COMMON_FAULT_INJECTOR_H_
