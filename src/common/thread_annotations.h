// Clang thread-safety annotations and capability-annotated synchronization
// wrappers (DESIGN.md §14). The macros expand to clang's thread-safety
// attributes so a Clang build with -Wthread-safety (CMake option
// URCL_THREAD_SAFETY, wired into scripts/check.sh) statically proves the
// locking contract: every URCL_GUARDED_BY member access must hold the named
// capability, and the RAII guards below are the only way to acquire one. On
// GCC (and any compiler without the attributes) everything compiles to
// no-ops, so the wrappers cost exactly what the std primitives cost.
//
// Library code declares urcl::Mutex / urcl::SharedMutex members instead of
// the raw std types and locks them with MutexLock / ReaderMutexLock /
// WriterMutexLock. The repo lint enforces this mechanically (rules
// lock/unannotated-mutex and lock/bare-lock, tools/lint/rules.cc): raw
// std::mutex declarations and bare Lock()/unlock() calls outside this header
// fail repo_lint, so the annotated wrappers cannot be bypassed by accident.
#ifndef URCL_COMMON_THREAD_ANNOTATIONS_H_
#define URCL_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define URCL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define URCL_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

// Type annotations.
#define URCL_CAPABILITY(x) URCL_THREAD_ANNOTATION_(capability(x))
#define URCL_SCOPED_CAPABILITY URCL_THREAD_ANNOTATION_(scoped_lockable)

// Member annotations: the member may only be read/written while holding the
// named capability (pt_: the pointed-to data, not the pointer itself).
#define URCL_GUARDED_BY(x) URCL_THREAD_ANNOTATION_(guarded_by(x))
#define URCL_PT_GUARDED_BY(x) URCL_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations between capabilities.
#define URCL_ACQUIRED_BEFORE(...) URCL_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define URCL_ACQUIRED_AFTER(...) URCL_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Function annotations: capabilities the caller must hold (REQUIRES), must
// not hold (EXCLUDES), or that the function itself acquires/releases.
#define URCL_REQUIRES(...) URCL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define URCL_REQUIRES_SHARED(...) \
  URCL_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define URCL_ACQUIRE(...) URCL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define URCL_ACQUIRE_SHARED(...) \
  URCL_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define URCL_RELEASE(...) URCL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define URCL_RELEASE_SHARED(...) \
  URCL_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define URCL_RELEASE_GENERIC(...) \
  URCL_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define URCL_TRY_ACQUIRE(...) URCL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define URCL_TRY_ACQUIRE_SHARED(...) \
  URCL_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))
#define URCL_EXCLUDES(...) URCL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define URCL_ASSERT_CAPABILITY(x) URCL_THREAD_ANNOTATION_(assert_capability(x))
#define URCL_ASSERT_SHARED_CAPABILITY(x) \
  URCL_THREAD_ANNOTATION_(assert_shared_capability(x))
#define URCL_RETURN_CAPABILITY(x) URCL_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for hand-verified publication protocols the analysis cannot
// express. Every use carries a comment proving the synchronization; the goal
// is zero uses in src/.
#define URCL_NO_THREAD_SAFETY_ANALYSIS URCL_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace urcl {

// Capability-annotated exclusive mutex. Lock/Unlock are public so the RAII
// guards (and clang's analysis of them) can reach the capability, but
// library code outside this header may only lock through the guards — the
// lock/bare-lock lint rule bans direct Lock()/Unlock() calls. TryLock is the
// one sanctioned manual entry point: a successful try-acquire must be
// adopted into a MutexLock immediately (see ForecastService::TryPlanForward
// for the pattern).
class URCL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() URCL_ACQUIRE() { mu_.lock(); }
  void Unlock() URCL_RELEASE() { mu_.unlock(); }
  bool TryLock() URCL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For CondVar::Wait only: the condition variable needs the underlying
  // handle to release/reacquire atomically around the block.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// Capability-annotated reader/writer mutex (exclusive writers, shared
// readers). Lock through WriterMutexLock / ReaderMutexLock.
class URCL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() URCL_ACQUIRE() { mu_.lock(); }
  void Unlock() URCL_RELEASE() { mu_.unlock(); }
  void LockShared() URCL_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() URCL_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Tag for adopting an already-held capability into a scoped guard (the
// TryLock success path); mirrors std::adopt_lock.
struct AdoptLockT {
  explicit AdoptLockT() = default;
};
inline constexpr AdoptLockT kAdoptLock{};

// RAII exclusive lock of a Mutex.
class URCL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) URCL_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  // Adopts a capability the caller already holds (via a successful TryLock);
  // the destructor releases it like any other MutexLock.
  MutexLock(Mutex& mu, AdoptLockT) URCL_REQUIRES(mu) : mu_(mu) {}
  ~MutexLock() URCL_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive (writer) lock of a SharedMutex.
class URCL_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) URCL_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterMutexLock() URCL_RELEASE_GENERIC() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock of a SharedMutex.
class URCL_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) URCL_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() URCL_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable paired with urcl::Mutex. Wait takes the Mutex whose
// MutexLock the caller holds; there is deliberately no predicate overload —
// callers write `while (!pred) cv.Wait(mu);` so the predicate's guarded
// reads sit in the caller's scope, where the analysis can see the capability
// (a lambda body is analyzed as its own function and cannot).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and reacquires before returning.
  // Spurious wakeups happen; always re-test the predicate in a loop.
  void Wait(Mutex& mu) URCL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace urcl

#endif  // URCL_COMMON_THREAD_ANNOTATIONS_H_
