// Lightweight ok/error result for *recoverable* failures — corrupt or
// truncated input, missing files, checkpoint rejection — where the caller can
// fall back (e.g. to an older checkpoint) or surface the message to the user.
// URCL_CHECK remains the tool for programming-error invariants that should
// abort; Status is for conditions a correct program must survive.
#ifndef URCL_COMMON_STATUS_H_
#define URCL_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace urcl {

class Status {
 public:
  Status() = default;  // ok

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status status;
    status.ok_ = false;
    status.message_ = std::move(message);
    return status;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace urcl

#endif  // URCL_COMMON_STATUS_H_
