// Lightweight ok/error result for *recoverable* failures — corrupt or
// truncated input, missing files, checkpoint rejection, shed queries — where
// the caller can fall back (e.g. to an older checkpoint, a retry with
// backoff, or a degraded-mode answer) or surface the message to the user.
// URCL_CHECK remains the tool for programming-error invariants that should
// abort; Status is for conditions a correct program must survive.
//
// Every failure carries a StatusCode so callers can branch on *kind* without
// parsing messages: the serving layer sheds overload as kOverloaded (retry
// with backoff), missed deadlines as kDeadlineExceeded (drop or re-budget),
// corrupt/non-finite data as kDataLoss (quarantine), and a draining service
// as kUnavailable (fail over). The class is [[nodiscard]]: silently dropping
// a Status is a compile-time warning (an error under URCL_WERROR), and the
// repo lint additionally bans statement-position discards in src/.
#ifndef URCL_COMMON_STATUS_H_
#define URCL_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace urcl {

enum class StatusCode {
  kOk = 0,
  kUnknown,             // untyped legacy Error(); treat as non-retryable
  kInvalidArgument,     // malformed request/input; retrying cannot help
  kFailedPrecondition,  // not ready yet (no snapshot, window still filling)
  kUnavailable,         // service draining (lame duck); fail over elsewhere
  kOverloaded,          // admission shed; retry with jittered backoff
  kDeadlineExceeded,    // budget cannot be met; drop or enlarge the deadline
  kDataLoss,            // corrupt bytes or non-finite values; quarantined
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kUnknown: return "UNKNOWN";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // ok

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    return Status(StatusCode::kUnknown, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status Overloaded(std::string message) {
    return Status(StatusCode::kOverloaded, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>"; for logs and test diagnostics.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace urcl

#endif  // URCL_COMMON_STATUS_H_
