// Deterministic random-number generation. Every stochastic component in the
// library takes an explicit `Rng&` so experiments are reproducible per seed.
#ifndef URCL_COMMON_RNG_H_
#define URCL_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace urcl {

// Wraps a 64-bit Mersenne engine with the sampling helpers the library needs.
// Copyable so callers can fork an independent stream from a snapshot.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) : engine_(seed) {}

  Rng(const Rng& other) = default;
  Rng& operator=(const Rng& other) = default;

  // Uniform real in [lo, hi).
  float Uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Standard normal scaled to `stddev` around `mean`.
  float Normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
  }

  // Beta(alpha, alpha) via two gamma draws; used by STMixup (Eq. 4).
  float Beta(float alpha, float beta) {
    std::gamma_distribution<float> ga(alpha, 1.0f);
    std::gamma_distribution<float> gb(beta, 1.0f);
    const float x = ga(engine_);
    const float y = gb(engine_);
    const float denom = x + y;
    return denom > 0.0f ? x / denom : 0.5f;
  }

  // True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  // Samples `k` distinct indices from [0, n) without replacement.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  // Returns a random permutation of [0, n).
  std::vector<int64_t> Permutation(int64_t n);

  // Exact engine-state (de)serialization for checkpoint/resume: a restored
  // Rng continues the stream bit-for-bit where the saved one left off. The
  // text format is the standard-guaranteed mt19937_64 stream representation.
  std::string SaveState() const;
  // Returns false (leaving the engine untouched) when `state` is not a valid
  // saved state.
  bool LoadState(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace urcl

#endif  // URCL_COMMON_RNG_H_
