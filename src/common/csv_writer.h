// Minimal CSV writer so the figure benches can export plottable series.
#ifndef URCL_COMMON_CSV_WRITER_H_
#define URCL_COMMON_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

namespace urcl {

// Streams rows to a CSV file; cells containing commas/quotes are quoted.
class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Aborts on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void WriteRow(const std::vector<std::string>& cells);

  const std::string& path() const { return path_; }

 private:
  static std::string Escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  size_t columns_;
};

}  // namespace urcl

#endif  // URCL_COMMON_CSV_WRITER_H_
