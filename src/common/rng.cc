#include "common/rng.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace urcl {

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  URCL_CHECK_GE(n, 0);
  URCL_CHECK_GE(k, 0);
  URCL_CHECK_LE(k, n) << "cannot sample " << k << " distinct items from " << n;
  std::vector<int64_t> pool = Permutation(n);
  pool.resize(static_cast<size_t>(k));
  return pool;
}

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> indices(static_cast<size_t>(n));
  std::iota(indices.begin(), indices.end(), 0);
  std::shuffle(indices.begin(), indices.end(), engine_);
  return indices;
}

std::string Rng::SaveState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

bool Rng::LoadState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) return false;
  engine_ = restored;
  return true;
}

}  // namespace urcl
