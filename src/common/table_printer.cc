#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace urcl {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream line;
    line << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    line << "\n";
    return line.str();
  };

  std::ostringstream out;
  out << render_row(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c) out << std::string(widths[c] + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) out << render_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace urcl
