#include "common/fault_injector.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace urcl {
namespace fault {
namespace {

// Parses a strict decimal double in [0, 1]; returns false on junk.
bool ParseRate(const std::string& text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  *out = value;
  return true;
}

bool ParseInt(const std::string& text, int64_t* out) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) parts.push_back(part);
  return parts;
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Reset() {
  MutexLock lock(serve_mu_);
  enabled_ = false;
  nan_rate_ = inf_rate_ = drop_rate_ = dup_rate_ = 0.0;
  bitflip_rate_ = drop_publish_rate_ = tick_drop_rate_ = tick_dup_rate_ = slow_rate_ = 0.0;
  slow_ms_ = 2;
  rng_ = Rng(0xFA117);
  kills_.clear();
  counters_ = FaultCounters();
}

bool FaultInjector::ServeDraw(double rate, int64_t* counter) {
  if (rate <= 0.0) return false;
  MutexLock lock(serve_mu_);
  if (!rng_.Bernoulli(rate)) return false;
  ++*counter;
  return true;
}

bool FaultInjector::NextSnapshotBitflipped() {
  return ServeDraw(bitflip_rate_, &counters_.bitflipped_snapshots);
}

bool FaultInjector::NextPublishDropped() {
  return ServeDraw(drop_publish_rate_, &counters_.dropped_publishes);
}

bool FaultInjector::NextTickDropped() {
  return ServeDraw(tick_drop_rate_, &counters_.dropped_ticks);
}

bool FaultInjector::NextTickDuplicated() {
  return ServeDraw(tick_dup_rate_, &counters_.duplicated_ticks);
}

bool FaultInjector::NextQuerySlowed() {
  return ServeDraw(slow_rate_, &counters_.slowed_queries);
}

size_t FaultInjector::PickByte(size_t size) {
  if (size == 0) return 0;
  MutexLock lock(serve_mu_);
  return static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(size) - 1));
}

void FaultInjector::ArmKill(const std::string& point, int64_t after_hits, KillMode mode) {
  KillSpec& spec = kills_[point];
  spec.after_hits = after_hits;
  spec.hits = 0;
  spec.mode = mode;
  enabled_ = true;
}

bool FaultInjector::AtKillPoint(const char* point) {
  if (!enabled_) return false;
  auto it = kills_.find(point);
  if (it == kills_.end() || it->second.after_hits <= 0) return false;
  KillSpec& spec = it->second;
  if (++spec.hits < spec.after_hits) return false;
  spec.after_hits = 0;  // disarm: a resumed run must not re-fire
  ++counters_.kills;
  if (spec.mode == KillMode::kExit) {
    std::fprintf(stderr, "[fault] simulated crash at kill point '%s' (hit %lld)\n", point,
                 static_cast<long long>(spec.hits));
    std::fflush(stderr);
    std::_Exit(137);
  }
  std::fprintf(stderr, "[fault] cooperative stop at kill point '%s' (hit %lld)\n", point,
               static_cast<long long>(spec.hits));
  return true;
}

bool FaultInjector::NextBatchDuplicated() {
  if (dup_rate_ <= 0.0) return false;
  if (!rng_.Bernoulli(dup_rate_)) return false;
  ++counters_.duplicated_batches;
  return true;
}

std::vector<std::string> FaultInjector::Configure(const std::string& spec) {
  std::vector<std::string> errors;
  for (const std::string& clause : SplitOn(spec, ';')) {
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      errors.push_back("fault clause '" + clause + "' is not key=value");
      continue;
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "nan" || key == "inf" || key == "drop" || key == "dup" ||
        key == "serve_bitflip" || key == "drop_publish" || key == "tick_drop" ||
        key == "tick_dup" || key == "slow") {
      double rate = 0.0;
      if (!ParseRate(value, &rate)) {
        errors.push_back("fault rate '" + clause + "' must be a number in [0, 1]");
        continue;
      }
      if (key == "nan") nan_rate_ = rate;
      else if (key == "inf") inf_rate_ = rate;
      else if (key == "drop") drop_rate_ = rate;
      else if (key == "dup") dup_rate_ = rate;
      else if (key == "serve_bitflip") bitflip_rate_ = rate;
      else if (key == "drop_publish") drop_publish_rate_ = rate;
      else if (key == "tick_drop") tick_drop_rate_ = rate;
      else if (key == "tick_dup") tick_dup_rate_ = rate;
      else slow_rate_ = rate;
      enabled_ = enabled_ || rate > 0.0;
    } else if (key == "slow_ms") {
      int64_t ms = 0;
      if (!ParseInt(value, &ms) || ms < 0) {
        errors.push_back("slow_ms '" + value + "' must be a non-negative integer");
        continue;
      }
      slow_ms_ = ms;
    } else if (key == "seed") {
      int64_t seed = 0;
      if (!ParseInt(value, &seed)) {
        errors.push_back("fault seed '" + value + "' is not an integer");
        continue;
      }
      rng_ = Rng(static_cast<uint64_t>(seed));
    } else if (key == "kill") {
      // kill=<point>:<hit>[:stop]
      const std::vector<std::string> parts = SplitOn(value, ':');
      int64_t hits = 0;
      if (parts.size() < 2 || parts.size() > 3 || !ParseInt(parts[1], &hits) || hits <= 0) {
        errors.push_back("kill spec '" + value + "' must be <point>:<hit>[:stop]");
        continue;
      }
      KillMode mode = KillMode::kExit;
      if (parts.size() == 3) {
        if (parts[2] != "stop") {
          errors.push_back("kill mode '" + parts[2] + "' must be 'stop' or absent");
          continue;
        }
        mode = KillMode::kStop;
      }
      ArmKill(parts[0], hits, mode);
    } else {
      errors.push_back("unknown fault key '" + key + "'");
    }
  }
  return errors;
}

void FaultInjector::LoadFromEnv() {
  const char* spec = std::getenv("URCL_FAULT");
  if (spec == nullptr || *spec == '\0') return;
  for (const std::string& error : Configure(spec)) {
    std::fprintf(stderr, "[fault] URCL_FAULT: %s\n", error.c_str());
  }
}

}  // namespace fault
}  // namespace urcl
