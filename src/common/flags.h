// Minimal command-line flag parsing for the benchmark/example binaries.
// Supports `--name value` and `--name=value` forms with typed lookups.
#ifndef URCL_COMMON_FLAGS_H_
#define URCL_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace urcl {

// Parses flags once at startup; unknown flags are kept and retrievable so the
// binaries can share a common set while adding their own.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name, const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

// ApplyRuntimeFlags — the startup glue that pushes parsed flags into the
// runtime/obs layers — lives in runtime/runtime_flags.h: common/ sits at the
// bottom of the layer DAG and may not reach upward (tools/lint/layering.cc).

}  // namespace urcl

#endif  // URCL_COMMON_FLAGS_H_
