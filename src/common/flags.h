// Minimal command-line flag parsing for the benchmark/example binaries.
// Supports `--name value` and `--name=value` forms with typed lookups.
#ifndef URCL_COMMON_FLAGS_H_
#define URCL_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace urcl {

// Parses flags once at startup; unknown flags are kept and retrievable so the
// binaries can share a common set while adding their own.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name, const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

// Applies flags that configure the process-wide runtime: `--threads N` sets
// the compute thread count (runtime::SetNumThreads), the URCL_FAULT env var
// arms the fault-injection harness (common/fault_injector.h), and the
// observability layer is configured from URCL_OBS plus `--metrics-out`,
// `--trace-out` and `--profile-out` (each enables its subsystem and sets the
// file obs::WriteConfiguredOutputs() writes at exit). Call once at startup in
// any binary that accepts flags; a no-op when nothing is set.
void ApplyRuntimeFlags(const Flags& flags);

}  // namespace urcl

#endif  // URCL_COMMON_FLAGS_H_
