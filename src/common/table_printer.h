// Aligned ASCII table rendering for the benchmark binaries, so every
// table/figure reproduction prints rows in the same layout the paper uses.
#ifndef URCL_COMMON_TABLE_PRINTER_H_
#define URCL_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace urcl {

// Collects rows of string cells and renders them with per-column alignment.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds a row; it may be shorter than the header (remaining cells blank).
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats a double with `precision` decimals.
  static std::string Num(double value, int precision = 2);

  // Renders the full table (header, separator, rows) as a string.
  std::string ToString() const;

  // Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace urcl

#endif  // URCL_COMMON_TABLE_PRINTER_H_
