// Invariant-checking macros in the style used by database engines: cheap,
// always-on checks that abort with a readable message instead of throwing.
#ifndef URCL_COMMON_CHECK_H_
#define URCL_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace urcl {
namespace internal {

// Terminates the process after printing `message` with source location.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& message);

// Stream-capture helper so URCL_CHECK can accept `<<`-style payloads.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line) {
    stream_ << "Check failed: " << condition << " ";
  }

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace urcl

// Aborts with a diagnostic when `condition` is false. Usable in headers and
// hot paths; the happy path is a single branch.
#define URCL_CHECK(condition)                                                   \
  if (!(condition))                                                             \
  ::urcl::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define URCL_CHECK_EQ(a, b) URCL_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define URCL_CHECK_NE(a, b) URCL_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define URCL_CHECK_LT(a, b) URCL_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define URCL_CHECK_LE(a, b) URCL_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define URCL_CHECK_GT(a, b) URCL_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define URCL_CHECK_GE(a, b) URCL_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // URCL_COMMON_CHECK_H_
