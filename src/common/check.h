// Invariant-checking macros in the style used by database engines: cheap,
// always-on checks that abort with a readable message instead of throwing —
// plus the runtime gate for the optional graph/memory integrity analyses
// (`urcl::check`, see DESIGN.md §9).
#ifndef URCL_COMMON_CHECK_H_
#define URCL_COMMON_CHECK_H_

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace urcl {
namespace internal {

// Terminates the process after printing `message` with source location.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& message);

// Called (once, best effort) between printing the diagnostic and abort(), so
// the observability layer can flush its flight recorder on a fatal check.
// The hook must be async-signal-tolerant in spirit: no throwing, no further
// URCL_CHECKs on its path. One hook per process (last writer wins). Inline
// (header-only) so src/obs/ can install a hook without linking upward into
// urcl_common — common sits above obs in the layering.
using CheckFailureHook = void (*)(const char* file, int line, const char* message);
inline std::atomic<CheckFailureHook>& CheckFailureHookSlot() {
  static std::atomic<CheckFailureHook> hook{nullptr};
  return hook;
}
inline void SetCheckFailureHook(CheckFailureHook hook) {
  CheckFailureHookSlot().store(hook, std::memory_order_release);
}

// Stream-capture helper so URCL_CHECK can accept `<<`-style payloads.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line) {
    stream_ << "Check failed: " << condition << " ";
  }

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

namespace check {

// Master switch for the graph-integrity analyses (autograd version-counter
// verification in Backward and the trainer's pre-backward LintGraph pass).
// Initial value comes from the URCL_CHECK environment variable ("0"/"off"/
// "false" disable, anything else enables); unset means enabled only in debug
// (!NDEBUG) builds. Reading the gate is one relaxed atomic load, so disabled
// checks cost a predictable branch and nothing else.
bool GraphChecksEnabled();

// Test/tooling override; wins over the environment for the rest of the
// process.
void SetGraphChecksEnabled(bool enabled);

// Shared env-value parser ("0"/"off"/"false"/"OFF" -> false).
bool ParseEnabledValue(const char* value);

}  // namespace check
}  // namespace urcl

// Aborts with a diagnostic when `condition` is false. Usable in headers and
// hot paths; the happy path is a single branch.
#define URCL_CHECK(condition)                                                   \
  if (!(condition))                                                             \
  ::urcl::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define URCL_CHECK_EQ(a, b) URCL_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define URCL_CHECK_NE(a, b) URCL_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define URCL_CHECK_LT(a, b) URCL_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define URCL_CHECK_LE(a, b) URCL_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define URCL_CHECK_GT(a, b) URCL_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define URCL_CHECK_GE(a, b) URCL_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // URCL_COMMON_CHECK_H_
